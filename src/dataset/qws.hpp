// QWS-like web-service QoS data generation.
//
// The paper evaluates on the QWS dataset (Al-Masri & Mahmoud, WWW 2007):
// ~10,000 measured web services with nine QoS attributes, which the authors
// extend to 100,000 services / 10 attributes "by randomly generating QoS
// values which are limited to a narrow range following the distribution of
// the QWS dataset".
//
// The real QWS file is not redistributable, so this module performs the
// substitution documented in DESIGN.md §2: a generator whose per-attribute
// marginal shapes (range, skew, unit) follow the published QWS summary, with
// an optional latent quality factor inducing the mild positive correlation
// observed in real service measurements. The paper's own extension step is
// exactly this kind of resampling, so the workload the algorithms see is of
// the same family the paper used.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

/// Marginal shape of one QoS attribute.
enum class MarginalShape {
  kLongTailLow,   ///< lognormal-like mass near the low end, long upper tail
  kSkewHigh,      ///< most mass near the upper bound (e.g. availability)
  kSkewLow,       ///< most mass near the lower bound (e.g. throughput)
  kSymmetric,     ///< bell-ish around the midpoint
  kBroad,         ///< close to uniform over the range
};

struct QwsAttribute {
  std::string name;
  std::string unit;
  double min = 0.0;
  double max = 1.0;
  MarginalShape shape = MarginalShape::kBroad;
  /// True for benefit attributes (availability, throughput, ...) that must be
  /// flipped to cost orientation before skyline computation.
  bool higher_is_better = false;
};

/// The nine QWS attributes plus a tenth synthetic "Price" attribute (the
/// paper selects 10 QoS attributes). `dim` must be in [1, 10]; the first
/// `dim` attributes of the canonical ordering are returned.
[[nodiscard]] std::vector<QwsAttribute> qws_schema(std::size_t dim);

class QwsLikeGenerator {
 public:
  struct Options {
    /// Strength of the latent per-service quality factor in [0, 1); 0 means
    /// attributes are independent. Real QoS data shows mild positive
    /// correlation between quality attributes; the default keeps skyline
    /// sizes at the paper's scale (N=100k, d=10) in the low thousands.
    double quality_correlation = 0.5;
  };

  QwsLikeGenerator(std::size_t dim, std::uint64_t seed);
  QwsLikeGenerator(std::size_t dim, std::uint64_t seed, Options options);

  /// Raw measurements in natural units and orientation (row i = service i).
  [[nodiscard]] PointSet generate_raw(std::size_t n);

  /// Skyline-ready data: benefit attributes flipped to (max - v) so smaller
  /// is better in every dimension, matching the paper's Fig. 1 convention.
  [[nodiscard]] PointSet generate_oriented(std::size_t n);

  [[nodiscard]] const std::vector<QwsAttribute>& schema() const noexcept { return schema_; }

  /// Flips benefit attributes of a raw set into cost orientation.
  [[nodiscard]] static PointSet orient(const PointSet& raw,
                                       const std::vector<QwsAttribute>& schema);

 private:
  double sample_attribute(const QwsAttribute& attr, double quality_z);

  std::vector<QwsAttribute> schema_;
  common::Rng rng_;
  Options options_;
};

/// The paper's dataset-extension method, verbatim: "we extend the size of
/// the QWS dataset by randomly generating QoS values which are limited to a
/// narrow range following the distribution of the QWS dataset". Given seed
/// measurements (the real QWS file, or any PointSet), each generated record
/// resamples a random seed row and jitters every attribute within ±`jitter`
/// (relative), clamped to the seed data's per-attribute range. The joint
/// distribution — including cross-attribute correlation — is inherited from
/// the seed rows, which pure marginal generators cannot do.
class BootstrapResampler {
 public:
  /// `seed_data` must be non-empty; `jitter` in [0, 1) is the relative
  /// half-width of the per-attribute noise.
  BootstrapResampler(data::PointSet seed_data, double jitter = 0.05);

  /// `n` resampled points with fresh sequential ids, deterministic in `rng`.
  [[nodiscard]] PointSet generate(std::size_t n, common::Rng& rng) const;

  [[nodiscard]] const PointSet& seed_data() const noexcept { return seed_; }
  [[nodiscard]] double jitter() const noexcept { return jitter_; }

 private:
  PointSet seed_;
  double jitter_;
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace mrsky::data
