#include "src/dataset/record_file.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "src/common/error.hpp"

namespace mrsky::data {

namespace {

constexpr char kHeaderMagic[4] = {'M', 'R', 'S', 'K'};
constexpr char kTrailerMagic[4] = {'K', 'S', 'R', 'M'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const char* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
}

}  // namespace

// ---- Writer ---------------------------------------------------------------

struct RecordFileWriter::Impl {
  std::ofstream file;
  std::vector<PointId> pending_ids;
  std::vector<double> pending_coords;  // row-major, pending_ids.size() * dim
  std::vector<std::uint64_t> block_offsets;
  std::vector<std::uint64_t> block_records;
  std::vector<std::uint64_t> block_checksums;
};

RecordFileWriter::RecordFileWriter(const std::string& path, std::size_t dim,
                                   std::size_t records_per_block)
    : impl_(std::make_unique<Impl>()), dim_(dim), records_per_block_(records_per_block) {
  MRSKY_REQUIRE(dim >= 1, "records need at least one attribute");
  MRSKY_REQUIRE(records_per_block >= 1, "blocks must hold at least one record");
  impl_->file.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->file) MRSKY_FAIL("cannot open record file for writing: " + path);
  impl_->file.write(kHeaderMagic, sizeof(kHeaderMagic));
  write_pod(impl_->file, kVersion);
  write_pod(impl_->file, static_cast<std::uint64_t>(dim));
  write_pod(impl_->file, static_cast<std::uint64_t>(records_per_block));
}

RecordFileWriter::~RecordFileWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; callers who care call close() themselves.
  }
}

void RecordFileWriter::append(PointId id, std::span<const double> coords) {
  MRSKY_REQUIRE(!closed_, "append after close");
  MRSKY_REQUIRE(coords.size() == dim_, "record dimension mismatch");
  impl_->pending_ids.push_back(id);
  impl_->pending_coords.insert(impl_->pending_coords.end(), coords.begin(), coords.end());
  ++total_records_;
  if (impl_->pending_ids.size() >= records_per_block_) flush_block();
}

void RecordFileWriter::append(const PointSet& ps) {
  MRSKY_REQUIRE(ps.dim() == dim_, "point set dimension mismatch");
  for (std::size_t i = 0; i < ps.size(); ++i) append(ps.id(i), ps.point(i));
}

void RecordFileWriter::flush_block() {
  if (impl_->pending_ids.empty()) return;
  auto& file = impl_->file;
  impl_->block_offsets.push_back(static_cast<std::uint64_t>(file.tellp()));
  impl_->block_records.push_back(impl_->pending_ids.size());

  write_pod(file, static_cast<std::uint64_t>(impl_->pending_ids.size()));
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (std::size_t r = 0; r < impl_->pending_ids.size(); ++r) {
    const PointId id = impl_->pending_ids[r];
    write_pod(file, id);
    checksum = fnv1a(reinterpret_cast<const char*>(&id), sizeof(id), checksum);
    const double* row = impl_->pending_coords.data() + r * dim_;
    file.write(reinterpret_cast<const char*>(row),
               static_cast<std::streamsize>(dim_ * sizeof(double)));
    checksum = fnv1a(reinterpret_cast<const char*>(row), dim_ * sizeof(double), checksum);
  }
  impl_->block_checksums.push_back(checksum);
  impl_->pending_ids.clear();
  impl_->pending_coords.clear();
}

void RecordFileWriter::close() {
  if (closed_) return;
  flush_block();
  auto& file = impl_->file;
  const auto footer_offset = static_cast<std::uint64_t>(file.tellp());
  write_pod(file, static_cast<std::uint64_t>(impl_->block_offsets.size()));
  for (std::size_t b = 0; b < impl_->block_offsets.size(); ++b) {
    write_pod(file, impl_->block_offsets[b]);
    write_pod(file, impl_->block_records[b]);
    write_pod(file, impl_->block_checksums[b]);
  }
  write_pod(file, static_cast<std::uint64_t>(total_records_));
  write_pod(file, footer_offset);
  file.write(kTrailerMagic, sizeof(kTrailerMagic));
  file.flush();
  if (!file) MRSKY_FAIL("record file write failed on close");
  file.close();
  closed_ = true;
}

// ---- Reader ---------------------------------------------------------------

struct RecordFileReader::Impl {
  mutable std::ifstream file;
};

RecordFileReader::RecordFileReader(const std::string& path) : impl_(std::make_unique<Impl>()) {
  auto& file = impl_->file;
  file.open(path, std::ios::binary);
  if (!file) MRSKY_FAIL("cannot open record file: " + path);

  char magic[4];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kHeaderMagic, sizeof(magic)) != 0) {
    MRSKY_FAIL("not a record file (bad header magic): " + path);
  }
  std::uint32_t version = 0;
  read_pod(file, version);
  if (version != kVersion) MRSKY_FAIL("unsupported record file version");
  std::uint64_t dim = 0;
  std::uint64_t records_per_block = 0;
  read_pod(file, dim);
  read_pod(file, records_per_block);
  dim_ = static_cast<std::size_t>(dim);

  // Trailer: footer offset + magic at the very end.
  file.seekg(-static_cast<std::streamoff>(sizeof(std::uint64_t) + sizeof(kTrailerMagic)),
             std::ios::end);
  std::uint64_t footer_offset = 0;
  read_pod(file, footer_offset);
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kTrailerMagic, sizeof(magic)) != 0) {
    MRSKY_FAIL("truncated record file (bad trailer): " + path);
  }

  file.seekg(static_cast<std::streamoff>(footer_offset));
  std::uint64_t block_count = 0;
  read_pod(file, block_count);
  blocks_.resize(static_cast<std::size_t>(block_count));
  for (auto& block : blocks_) {
    read_pod(file, block.offset);
    read_pod(file, block.records);
    read_pod(file, block.checksum);
  }
  std::uint64_t total = 0;
  read_pod(file, total);
  total_records_ = static_cast<std::size_t>(total);
  if (!file) MRSKY_FAIL("truncated record file footer: " + path);
}

RecordFileReader::~RecordFileReader() = default;

std::vector<RecordSplit> RecordFileReader::splits(std::size_t target_splits) const {
  MRSKY_REQUIRE(target_splits >= 1, "need at least one split");
  std::vector<RecordSplit> out;
  if (blocks_.empty()) {
    out.push_back(RecordSplit{0, 0, 0});
    return out;
  }
  const std::size_t n_splits = std::min(target_splits, blocks_.size());
  for (std::size_t s = 0; s < n_splits; ++s) {
    const std::size_t first = blocks_.size() * s / n_splits;
    const std::size_t last = blocks_.size() * (s + 1) / n_splits;  // exclusive
    RecordSplit split;
    split.first_block = first;
    split.block_count = last - first;
    for (std::size_t b = first; b < last; ++b) {
      split.record_count += static_cast<std::size_t>(blocks_[b].records);
    }
    out.push_back(split);
  }
  return out;
}

PointSet RecordFileReader::read_split(const RecordSplit& split, ParseReport* report) const {
  MRSKY_REQUIRE(split.first_block + split.block_count <= blocks_.size(),
                "split exceeds block table");
  const bool lenient = report != nullptr;
  auto& file = impl_->file;
  PointSet out(dim_);
  out.reserve(split.record_count);
  std::vector<double> row(dim_);
  // Staged per block so a checksum mismatch (detectable only after the whole
  // block is read) can discard the block without poisoning earlier ones.
  std::vector<PointId> block_ids;
  std::vector<double> block_coords;
  for (std::size_t b = split.first_block; b < split.first_block + split.block_count; ++b) {
    const BlockInfo& block = blocks_[b];
    file.clear();
    file.seekg(static_cast<std::streamoff>(block.offset));
    std::uint64_t count = 0;
    read_pod(file, count);
    std::string defect;
    if (!file || count != block.records) {
      defect = "block header disagrees with footer index";
    }
    block_ids.clear();
    block_coords.clear();
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    for (std::uint64_t r = 0; defect.empty() && r < count; ++r) {
      PointId id = 0;
      read_pod(file, id);
      checksum = fnv1a(reinterpret_cast<const char*>(&id), sizeof(id), checksum);
      file.read(reinterpret_cast<char*>(row.data()),
                static_cast<std::streamsize>(dim_ * sizeof(double)));
      checksum = fnv1a(reinterpret_cast<const char*>(row.data()), dim_ * sizeof(double),
                       checksum);
      block_ids.push_back(id);
      block_coords.insert(block_coords.end(), row.begin(), row.end());
    }
    if (defect.empty() && !file) defect = "truncated block while reading records";
    if (defect.empty() && checksum != block.checksum) {
      defect = "checksum mismatch (corrupted file?)";
    }
    if (!defect.empty()) {
      if (!lenient) MRSKY_FAIL("block " + std::to_string(b) + ": " + defect);
      report->add_issue(b, defect + " — " + std::to_string(block.records) +
                               " records dropped");
      report->rows_skipped += static_cast<std::size_t>(block.records) - 1;
      continue;
    }
    if (!lenient) {
      // Strict fast path: the staged block is clean, land it in one bulk
      // append instead of a push_back per record.
      out.append_rows(block_coords, block_ids);
      continue;
    }
    for (std::size_t r = 0; r < block_ids.size(); ++r) {
      const double* coords = block_coords.data() + r * dim_;
      bool finite = true;
      for (std::size_t a = 0; a < dim_; ++a) finite = finite && std::isfinite(coords[a]);
      if (!finite) {
        report->add_issue(b, "record with non-finite coordinates dropped (id " +
                                 std::to_string(block_ids[r]) + ")");
        continue;
      }
      ++report->rows_read;
      out.push_back(std::span<const double>(coords, dim_), block_ids[r]);
    }
  }
  return out;
}

PointSet RecordFileReader::read_all(ParseReport* report) const {
  RecordSplit whole;
  whole.first_block = 0;
  whole.block_count = blocks_.size();
  whole.record_count = total_records_;
  return read_split(whole, report);
}

void write_record_file(const std::string& path, const PointSet& ps,
                       std::size_t records_per_block) {
  RecordFileWriter writer(path, ps.dim(), records_per_block);
  writer.append(ps);
  writer.close();
}

PointSet read_record_file(const std::string& path, ParseReport* report) {
  return RecordFileReader(path).read_all(report);
}

}  // namespace mrsky::data
