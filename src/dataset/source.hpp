// DatasetSource: the seam between "where the points live" and everything
// that consumes them (DESIGN.md decision 16).
//
// Every downstream layer — run_mr_skyline, the QueryEngine, the adaptive
// planner, the CLIs and benches — programs against this interface instead of
// a materialised PointSet. The contract is block-oriented: a source is a
// sequence of blocks, each readable independently into a caller-owned
// PointSet, with optional per-block statistics (row count, byte footprint,
// min/max corners). A resident source additionally exposes its PointSet
// directly, which is the zero-copy fast path the legacy overloads take —
// wrapping an in-memory set in a PointSetSource costs nothing and changes
// nothing.
//
// Determinism: block order, row order within a block, and sample() output are
// pure functions of the source's construction arguments. Two opens of the
// same `.mrb` file iterate identically; the pipeline's bitwise-identity
// guarantee rests on this.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dataset/io.hpp"
#include "src/dataset/parse_report.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::data {

class BlockStore;

/// Per-block statistics a scheduler can use without reading the block.
/// Corners are only meaningful when `has_corners` — a source that cannot
/// provide them cheaply (e.g. an in-memory set's virtual blocks) reports
/// none, and block-level pruning stays inert for it.
struct BlockStats {
  std::size_t rows = 0;
  std::uint64_t bytes = 0;
  bool has_corners = false;
  std::vector<double> min_corner;
  std::vector<double> max_corner;
};

class DatasetSource {
 public:
  virtual ~DatasetSource() = default;

  [[nodiscard]] virtual std::size_t dim() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t block_count() const = 0;

  /// Statistics for block b — must not touch the block's payload.
  [[nodiscard]] virtual BlockStats block_stats(std::size_t b) const = 0;

  /// Appends block b's rows (ids preserved, source order) to `out`.
  virtual void read_block(std::size_t b, PointSet& out) const = 0;

  /// Hint that block b's rows will not be needed again soon. Advisory.
  virtual void release_block(std::size_t /*b*/) const {}

  /// The dataset as an already-resident PointSet, or nullptr. Non-null means
  /// consumers may bypass block iteration entirely — the legacy zero-copy
  /// path, taken so in-memory runs stay bitwise- and metrics-identical to
  /// what they were before the source seam existed.
  [[nodiscard]] virtual const PointSet* resident() const { return nullptr; }

  /// Deterministic sample of ~target rows: proportional per-block quotas
  /// (largest-remainder, so quotas sum to target), rows at evenly spaced
  /// in-block offsets with a seed-derived shift. Touches only blocks with a
  /// non-zero quota and releases each afterwards, so sampling a file never
  /// materialises it. Returns everything when target >= size().
  [[nodiscard]] virtual PointSet sample(std::size_t target, std::uint64_t seed) const;

  /// The whole dataset as one PointSet (the compatibility path for consumers
  /// that genuinely need residency, e.g. QueryEngine serving).
  [[nodiscard]] virtual PointSet materialize() const;

  /// One-line human description for logs and CLI banners.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// In-memory adapter: a PointSet seen through the source interface. The
/// non-owning constructor aliases the caller's set (caller keeps it alive);
/// the owning constructor moves it in. Virtual blocks of `block_rows` rows
/// exist so block-oriented consumers still work, but they carry no corners —
/// an in-memory run never block-prunes, preserving legacy behaviour exactly.
class PointSetSource final : public DatasetSource {
 public:
  explicit PointSetSource(const PointSet& ps);
  explicit PointSetSource(PointSet&& ps);

  [[nodiscard]] std::size_t dim() const override { return set().dim(); }
  [[nodiscard]] std::size_t size() const override { return set().size(); }
  [[nodiscard]] std::size_t block_count() const override;
  [[nodiscard]] BlockStats block_stats(std::size_t b) const override;
  void read_block(std::size_t b, PointSet& out) const override;
  [[nodiscard]] const PointSet* resident() const override { return &set(); }
  [[nodiscard]] PointSet materialize() const override { return set(); }
  [[nodiscard]] std::string describe() const override;

 private:
  [[nodiscard]] const PointSet& set() const noexcept {
    return view_ != nullptr ? *view_ : owned_;
  }

  const PointSet* view_ = nullptr;
  PointSet owned_{1};
};

/// A `.mrb` file seen through the source interface: real on-disk blocks,
/// footer corners, mmap-backed reads, MADV_DONTNEED release.
class BlockStoreSource final : public DatasetSource {
 public:
  explicit BlockStoreSource(const std::string& path);
  /// Wraps an already-open store (shared so copies of the source are cheap).
  explicit BlockStoreSource(std::shared_ptr<const BlockStore> store);
  ~BlockStoreSource() override;

  [[nodiscard]] std::size_t dim() const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t block_count() const override;
  [[nodiscard]] BlockStats block_stats(std::size_t b) const override;
  void read_block(std::size_t b, PointSet& out) const override;
  void release_block(std::size_t b) const override;
  [[nodiscard]] PointSet materialize() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const BlockStore& store() const noexcept { return *store_; }

 private:
  std::shared_ptr<const BlockStore> store_;
};

/// A CSV file seen through the source interface. Construction streams the
/// file row-by-row through the lenient/strict CsvRowReader into a private
/// temporary `.mrb` (removed on destruction), so a CSV bigger than RAM never
/// materialises; afterwards it behaves exactly like a BlockStoreSource.
class CsvSource final : public DatasetSource {
 public:
  /// `report`, when non-null, makes the CSV read lenient and receives the
  /// accepted/dropped accounting (same contract as read_csv).
  explicit CsvSource(const std::string& path, const CsvReadOptions& options = {},
                     ParseReport* report = nullptr,
                     std::size_t block_rows = 0 /* 0 = format default */);
  ~CsvSource() override;

  [[nodiscard]] std::size_t dim() const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t block_count() const override;
  [[nodiscard]] BlockStats block_stats(std::size_t b) const override;
  void read_block(std::size_t b, PointSet& out) const override;
  void release_block(std::size_t b) const override;
  [[nodiscard]] PointSet materialize() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string csv_path_;
  std::string temp_path_;
  std::unique_ptr<BlockStoreSource> backing_;
};

struct OpenDatasetOptions {
  /// CSV parsing (lenient iff `report` passed to open_dataset).
  CsvReadOptions csv;
  /// Block capacity when a CSV is staged into a temporary block store
  /// (0 = format default).
  std::size_t csv_block_rows = 0;
};

/// Opens `path` as the source its extension implies: `.mrb` → BlockStoreSource
/// (out-of-core), `.mrsk` → record file materialised behind a PointSetSource,
/// anything else → CsvSource (streamed). A non-null report makes `.mrsk`/CSV
/// reads lenient.
[[nodiscard]] std::unique_ptr<DatasetSource> open_dataset(
    const std::string& path, const OpenDatasetOptions& options = {},
    ParseReport* report = nullptr);

}  // namespace mrsky::data
