#include "src/qos/selector.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "src/common/error.hpp"
#include "src/partition/factory.hpp"
#include "src/skyline/algorithms.hpp"

namespace mrsky::qos {

QosConstraints::QosConstraints(std::size_t dim)
    : min_(dim, std::numeric_limits<double>::quiet_NaN()),
      max_(dim, std::numeric_limits<double>::quiet_NaN()) {
  MRSKY_REQUIRE(dim >= 1, "constraints need at least one attribute");
}

QosConstraints& QosConstraints::at_least(std::size_t attribute, double value) {
  MRSKY_REQUIRE(attribute < min_.size(), "attribute out of range");
  min_[attribute] = value;
  return *this;
}

QosConstraints& QosConstraints::at_most(std::size_t attribute, double value) {
  MRSKY_REQUIRE(attribute < max_.size(), "attribute out of range");
  max_[attribute] = value;
  return *this;
}

bool QosConstraints::admits(std::span<const double> natural_qos) const {
  MRSKY_REQUIRE(natural_qos.size() == min_.size(), "constraint dimension mismatch");
  for (std::size_t a = 0; a < min_.size(); ++a) {
    if (!std::isnan(min_[a]) && natural_qos[a] < min_[a]) return false;
    if (!std::isnan(max_[a]) && natural_qos[a] > max_[a]) return false;
  }
  return true;
}

SkylineServiceSelector::SkylineServiceSelector(ServiceCatalog catalog,
                                               core::MRSkylineConfig config)
    : catalog_(std::move(catalog)), config_(config), global_(catalog_.schema().size()) {}

const std::vector<WebService>& SkylineServiceSelector::skyline() {
  if (!computed_) full_recompute();
  return skyline_services_;
}

void SkylineServiceSelector::full_recompute() {
  MRSKY_REQUIRE(catalog_.size() > 0, "cannot select from an empty catalog");
  const data::PointSet points = catalog_.to_oriented_points();
  last_run_ = core::run_mr_skyline(points, config_);
  global_ = last_run_.skyline;

  // Seed the incremental maintainers with the run's partitioner state and
  // per-partition local skylines.
  part::PartitionerOptions popts;
  popts.num_partitions = config_.effective_partitions();
  popts.split_dim = config_.split_dim;
  partitioner_ = part::make_partitioner(config_.scheme, popts);
  partitioner_->fit(points);
  local_.clear();
  local_.reserve(last_run_.local_skylines.size());
  for (const auto& ls : last_run_.local_skylines) {
    local_.emplace_back(skyline::IncrementalSkyline(ls));
  }
  partition_data_ = part::split_by_partition(*partitioner_, points);
  incremental_tests_ = 0;
  refresh_service_view();
  computed_ = true;
}

void SkylineServiceSelector::merge_locals() {
  data::PointSet merged(catalog_.schema().size());
  for (const auto& maintainer : local_) {
    const auto& sky = maintainer.skyline();
    for (std::size_t i = 0; i < sky.size(); ++i) merged.push_back(sky.point(i), sky.id(i));
  }
  skyline::SkylineStats stats;
  global_ = skyline::bnl_skyline(merged, &stats);
  incremental_tests_ += stats.dominance_tests;
  refresh_service_view();
}

void SkylineServiceSelector::refresh_service_view() {
  skyline_services_.clear();
  skyline_services_.reserve(global_.size());
  for (data::PointId id : global_.ids()) {
    auto service = catalog_.find(id);
    MRSKY_ASSERT(service.has_value(), "skyline id missing from catalog");
    if (service) skyline_services_.push_back(std::move(*service));
  }
}

bool SkylineServiceSelector::add_service(std::string name, std::vector<double> qos) {
  if (!computed_) full_recompute();
  const data::PointId id = catalog_.add(std::move(name), std::move(qos));
  const WebService& added = catalog_.services().back();
  const std::vector<double> oriented = catalog_.oriented_qos(added);

  // Paper §II: route the newcomer to its partition's local skyline only.
  const std::size_t partition = partitioner_->assign(oriented);
  MRSKY_ASSERT(partition < local_.size(), "partition index out of range");
  partition_data_[partition].push_back(oriented, id);
  const std::uint64_t before = local_[partition].stats().dominance_tests;
  const bool entered_local = local_[partition].insert(oriented, id);
  incremental_tests_ += local_[partition].stats().dominance_tests - before;
  if (!entered_local) return false;  // dominated locally => dominated globally

  // Re-integrate local skylines into the global skyline (the Reduce stage).
  merge_locals();
  for (data::PointId gid : global_.ids()) {
    if (gid == id) return true;
  }
  return false;
}

std::vector<WebService> SkylineServiceSelector::skyline_within(
    const QosConstraints& constraints) const {
  MRSKY_REQUIRE(constraints.dim() == catalog_.schema().size(),
                "constraints must cover every schema attribute");
  data::PointSet admitted(catalog_.schema().size());
  for (const auto& service : catalog_.services()) {
    if (constraints.admits(service.qos)) {
      admitted.push_back(catalog_.oriented_qos(service), service.id);
    }
  }
  std::vector<WebService> out;
  if (admitted.empty()) return out;
  const data::PointSet sky = skyline::bnl_skyline(admitted);
  out.reserve(sky.size());
  for (data::PointId id : sky.ids()) {
    auto service = catalog_.find(id);
    if (service) out.push_back(std::move(*service));
  }
  return out;
}

bool SkylineServiceSelector::remove_service(data::PointId id) {
  if (!computed_) full_recompute();
  const auto service = catalog_.find(id);
  if (!service) return false;
  const std::vector<double> oriented = catalog_.oriented_qos(*service);
  catalog_.remove(id);

  const std::size_t partition = partitioner_->assign(oriented);
  MRSKY_ASSERT(partition < partition_data_.size(), "partition index out of range");

  // Drop the victim from its partition's retained data.
  const data::PointSet& old_data = partition_data_[partition];
  data::PointSet remaining(old_data.dim());
  remaining.reserve(old_data.size());
  for (std::size_t i = 0; i < old_data.size(); ++i) {
    if (old_data.id(i) != id) remaining.push_back(old_data.point(i), old_data.id(i));
  }
  partition_data_[partition] = std::move(remaining);

  // Recompute only that partition's local skyline (points the victim used to
  // dominate may resurface), then re-merge all local skylines.
  skyline::SkylineStats stats;
  const data::PointSet fresh_local =
      skyline::bnl_skyline(partition_data_[partition], &stats);
  incremental_tests_ += stats.dominance_tests;
  local_[partition] = skyline::IncrementalSkyline(fresh_local);

  // MR-Grid edge case: a partition skipped by §III-B pruning has an empty
  // local skyline because some *other* cell's points dominated all of it.
  // If the deletion just emptied the victim's cell, that guarantee may have
  // died with it — revive any pruned-but-populated partition.
  if (partition_data_[partition].empty()) {
    for (std::size_t p = 0; p < local_.size(); ++p) {
      if (local_[p].size() == 0 && !partition_data_[p].empty()) {
        skyline::SkylineStats revive_stats;
        local_[p] = skyline::IncrementalSkyline(
            skyline::bnl_skyline(partition_data_[p], &revive_stats));
        incremental_tests_ += revive_stats.dominance_tests;
      }
    }
  }
  merge_locals();
  return true;
}

const core::MRSkylineResult& SkylineServiceSelector::last_run() const { return last_run_; }

}  // namespace mrsky::qos
