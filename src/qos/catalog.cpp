#include "src/qos/catalog.hpp"

#include <algorithm>
#include <unordered_set>

#include "src/common/error.hpp"

namespace mrsky::qos {

ServiceCatalog::ServiceCatalog(std::vector<data::QwsAttribute> schema)
    : schema_(std::move(schema)) {
  MRSKY_REQUIRE(!schema_.empty(), "catalog needs at least one QoS attribute");
}

std::size_t ServiceCatalog::add(WebService service) {
  MRSKY_REQUIRE(service.qos.size() == schema_.size(),
                "service QoS width must match the catalog schema");
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    // Range enforcement keeps oriented coordinates non-negative, which the
    // MR-Angle hyperspherical transform requires.
    MRSKY_REQUIRE(service.qos[a] >= schema_[a].min && service.qos[a] <= schema_[a].max,
                  "service attribute '" + schema_[a].name + "' outside schema range");
  }
  for (const auto& existing : services_) {
    MRSKY_REQUIRE(existing.id != service.id,
                  "duplicate service id " + std::to_string(service.id));
  }
  services_.push_back(std::move(service));
  return services_.size() - 1;
}

data::PointId ServiceCatalog::add(std::string name, std::vector<double> qos) {
  data::PointId next = 0;
  for (const auto& s : services_) next = std::max(next, s.id + 1);
  add(WebService{next, std::move(name), std::move(qos)});
  return next;
}

std::optional<WebService> ServiceCatalog::find(data::PointId id) const {
  for (const auto& s : services_) {
    if (s.id == id) return s;
  }
  return std::nullopt;
}

bool ServiceCatalog::remove(data::PointId id) {
  for (auto it = services_.begin(); it != services_.end(); ++it) {
    if (it->id == id) {
      services_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<double> ServiceCatalog::oriented_qos(const WebService& service) const {
  MRSKY_REQUIRE(service.qos.size() == schema_.size(), "service QoS width mismatch");
  std::vector<double> out(service.qos.size());
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    out[a] = schema_[a].higher_is_better ? schema_[a].max - service.qos[a] : service.qos[a];
  }
  return out;
}

data::PointSet ServiceCatalog::to_oriented_points() const {
  data::PointSet ps(schema_.size());
  ps.reserve(services_.size());
  for (const auto& s : services_) ps.push_back(oriented_qos(s), s.id);
  return ps;
}

ServiceCatalog ServiceCatalog::synthetic(std::size_t n, std::size_t dim, std::uint64_t seed) {
  data::QwsLikeGenerator generator(dim, seed);
  const data::PointSet raw = generator.generate_raw(n);
  ServiceCatalog catalog(generator.schema());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const auto p = raw.point(i);
    catalog.add(WebService{raw.id(i), "service-" + std::to_string(raw.id(i)),
                           std::vector<double>(p.begin(), p.end())});
  }
  return catalog;
}

}  // namespace mrsky::qos
