#include "src/qos/io.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/common/error.hpp"

namespace mrsky::qos {

namespace {

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) comma = line.size();
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

double parse_double_or_throw(const std::string& s, const std::string& what) {
  double out = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  MRSKY_REQUIRE(ec == std::errc() && ptr == s.data() + s.size(), "bad number in " + what + ": " + s);
  return out;
}

}  // namespace

void write_catalog_csv(std::ostream& os, const ServiceCatalog& catalog) {
  os << "id,name";
  for (const auto& attr : catalog.schema()) os << "," << attr.name;
  os << "\n" << std::setprecision(17);
  for (const auto& service : catalog.services()) {
    os << service.id << "," << service.name;
    for (double v : service.qos) os << "," << v;
    os << "\n";
  }
  if (!os) MRSKY_FAIL("catalog CSV write failed");
}

void write_catalog_csv_file(const std::string& path, const ServiceCatalog& catalog) {
  std::ofstream file(path);
  if (!file) MRSKY_FAIL("cannot open for writing: " + path);
  write_catalog_csv(file, catalog);
}

ServiceCatalog read_catalog_csv(std::istream& is, std::vector<data::QwsAttribute> schema) {
  std::string line;
  MRSKY_REQUIRE(static_cast<bool>(std::getline(is, line)), "catalog CSV is empty");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const auto header = split_commas(line);
  MRSKY_REQUIRE(header.size() >= 3, "catalog CSV needs id, name and attribute columns");
  MRSKY_REQUIRE(header[0] == "id" && header[1] == "name",
                "catalog CSV must start with id,name columns");

  // Map file columns onto schema attributes by name.
  std::vector<std::size_t> schema_index_of_column(header.size() - 2);
  std::vector<bool> seen(schema.size(), false);
  for (std::size_t c = 2; c < header.size(); ++c) {
    bool found = false;
    for (std::size_t a = 0; a < schema.size(); ++a) {
      if (schema[a].name == header[c]) {
        MRSKY_REQUIRE(!seen[a], "duplicate attribute column: " + header[c]);
        schema_index_of_column[c - 2] = a;
        seen[a] = true;
        found = true;
        break;
      }
    }
    MRSKY_REQUIRE(found, "unknown attribute column: " + header[c]);
  }
  for (std::size_t a = 0; a < schema.size(); ++a) {
    MRSKY_REQUIRE(seen[a], "missing attribute column: " + schema[a].name);
  }

  ServiceCatalog catalog(std::move(schema));
  std::size_t row = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++row;
    const auto cells = split_commas(line);
    MRSKY_REQUIRE(cells.size() == header.size(),
                  "ragged catalog row " + std::to_string(row));
    WebService service;
    service.id = static_cast<data::PointId>(
        parse_double_or_throw(cells[0], "id of row " + std::to_string(row)));
    service.name = cells[1];
    service.qos.resize(catalog.schema().size());
    for (std::size_t c = 2; c < cells.size(); ++c) {
      service.qos[schema_index_of_column[c - 2]] =
          parse_double_or_throw(cells[c], "row " + std::to_string(row));
    }
    catalog.add(std::move(service));
  }
  return catalog;
}

ServiceCatalog read_catalog_csv_file(const std::string& path,
                                     std::vector<data::QwsAttribute> schema) {
  std::ifstream file(path);
  if (!file) MRSKY_FAIL("cannot open for reading: " + path);
  return read_catalog_csv(file, std::move(schema));
}

}  // namespace mrsky::qos
