// Catalog persistence: load/store service catalogs as CSV in the QWS file
// style — a header row naming the attributes, then one service per row with
// an id and a service name. Users who hold the real QWS dataset can export
// it to this layout and run every bench against it unmodified.
#pragma once

#include <iosfwd>
#include <string>

#include "src/qos/catalog.hpp"

namespace mrsky::qos {

/// Writes `id,name,<attr...>` rows with a header naming each schema attribute.
void write_catalog_csv(std::ostream& os, const ServiceCatalog& catalog);
void write_catalog_csv_file(const std::string& path, const ServiceCatalog& catalog);

/// Reads a catalog whose header matches `schema` by attribute name (order
/// need not match the schema; columns are mapped by name). The first two
/// columns must be `id` and `name`. Throws on unknown/missing attributes,
/// duplicate ids or out-of-range values.
[[nodiscard]] ServiceCatalog read_catalog_csv(std::istream& is,
                                              std::vector<data::QwsAttribute> schema);
[[nodiscard]] ServiceCatalog read_catalog_csv_file(const std::string& path,
                                                   std::vector<data::QwsAttribute> schema);

}  // namespace mrsky::qos
