// SkylineServiceSelector — the top-level facade of the library.
//
// Wraps a ServiceCatalog and an MRSkylineConfig into the workflow the paper
// motivates: compute the skyline of all registered services with the
// MapReduce pipeline, and keep it current as new services register without
// recomputing from scratch (paper §II: "the new service is first mapped into
// a group and added into the local skyline computation. Then all local
// skylines are integrated into the global skyline at the Reduce stage").
#pragma once

#include <span>
#include <vector>

#include "src/core/mr_skyline.hpp"
#include "src/partition/partitioner.hpp"
#include "src/qos/catalog.hpp"
#include "src/skyline/incremental.hpp"

namespace mrsky::qos {

/// Hard QoS requirements in natural units: per attribute an optional
/// [min, max] window (NaN = unconstrained). "Response time under 500 ms and
/// availability at least 99 %" is {max[ResponseTime]=500, min[Availability]=99}.
class QosConstraints {
 public:
  /// Unconstrained over `dim` attributes.
  explicit QosConstraints(std::size_t dim);

  QosConstraints& at_least(std::size_t attribute, double value);
  QosConstraints& at_most(std::size_t attribute, double value);

  [[nodiscard]] std::size_t dim() const noexcept { return min_.size(); }
  [[nodiscard]] bool admits(std::span<const double> natural_qos) const;

 private:
  std::vector<double> min_;  ///< NaN = no lower bound
  std::vector<double> max_;  ///< NaN = no upper bound
};

class SkylineServiceSelector {
 public:
  SkylineServiceSelector(ServiceCatalog catalog, core::MRSkylineConfig config = {});

  /// The current global skyline as full service records (natural units).
  /// First call (and any call after a batch of registrations) computes it.
  [[nodiscard]] const std::vector<WebService>& skyline();

  /// Registers a new service and updates the skyline incrementally: the
  /// service is assigned to its partition, that partition's local skyline is
  /// updated, and the global merge re-runs over local skylines only.
  /// Returns true iff the new service joined the global skyline.
  bool add_service(std::string name, std::vector<double> qos);

  /// Constrained selection: the skyline of only those services admitted by
  /// `constraints` (computed fresh per call — the constrained skyline is NOT
  /// a subset of the unconstrained one, because removing a dominator can
  /// promote a previously-dominated service).
  [[nodiscard]] std::vector<WebService> skyline_within(const QosConstraints& constraints) const;

  /// Deregisters a service (provider withdrawal). Removal can resurrect
  /// points the victim used to dominate, so the selector keeps each
  /// partition's full point set and recomputes only the victim's partition
  /// local skyline before re-merging — the deletion analogue of the paper's
  /// "compare only within the subdivided group" argument. Returns false when
  /// the id is unknown.
  bool remove_service(data::PointId id);

  [[nodiscard]] const ServiceCatalog& catalog() const noexcept { return catalog_; }

  /// Metrics of the last full MapReduce run (empty before the first run).
  [[nodiscard]] const core::MRSkylineResult& last_run() const;

  /// Dominance tests spent on incremental maintenance since the last full run.
  [[nodiscard]] std::uint64_t incremental_dominance_tests() const noexcept {
    return incremental_tests_;
  }

 private:
  void full_recompute();
  void merge_locals();
  void refresh_service_view();

  ServiceCatalog catalog_;
  core::MRSkylineConfig config_;
  part::PartitionerPtr partitioner_;
  std::vector<skyline::IncrementalSkyline> local_;  ///< per-partition maintainers
  std::vector<data::PointSet> partition_data_;      ///< full per-partition data (deletions)
  data::PointSet global_;                           ///< oriented global skyline
  std::vector<WebService> skyline_services_;
  core::MRSkylineResult last_run_;
  std::uint64_t incremental_tests_ = 0;
  bool computed_ = false;
};

}  // namespace mrsky::qos
