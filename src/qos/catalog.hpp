// Web-service QoS catalog — the application-facing data model (paper §I-II).
//
// A catalog is a registry of services (the paper's UDDI) with a QoS schema:
// per-attribute name, unit, range and orientation. The catalog owns the
// benefit→cost flip: skyline code always sees minimisation-oriented data,
// users always see natural units ("availability 99.1 %"), and the mapping is
// applied exactly once, here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/dataset/qws.hpp"

namespace mrsky::qos {

struct WebService {
  data::PointId id = 0;
  std::string name;
  std::vector<double> qos;  ///< natural units/orientation, one per schema attribute
};

class ServiceCatalog {
 public:
  /// An empty catalog with the given QoS schema (see data::qws_schema).
  explicit ServiceCatalog(std::vector<data::QwsAttribute> schema);

  /// Registers a service; its qos vector must match the schema width and the
  /// id must be unused. Returns the stored record's index.
  std::size_t add(WebService service);

  /// Registers with an auto-assigned id (max id + 1).
  data::PointId add(std::string name, std::vector<double> qos);

  [[nodiscard]] std::size_t size() const noexcept { return services_.size(); }
  [[nodiscard]] const std::vector<data::QwsAttribute>& schema() const noexcept { return schema_; }
  [[nodiscard]] const std::vector<WebService>& services() const noexcept { return services_; }

  /// Lookup by id; nullopt when absent.
  [[nodiscard]] std::optional<WebService> find(data::PointId id) const;

  /// Deregisters a service by id; returns false when absent.
  bool remove(data::PointId id);

  /// Cost-oriented coordinates of one service (benefit attributes flipped).
  [[nodiscard]] std::vector<double> oriented_qos(const WebService& service) const;

  /// The whole catalog as a minimisation-oriented PointSet (ids preserved).
  [[nodiscard]] data::PointSet to_oriented_points() const;

  /// Builds a catalog of `n` synthetic services from the QWS-like generator.
  [[nodiscard]] static ServiceCatalog synthetic(std::size_t n, std::size_t dim,
                                                std::uint64_t seed);

 private:
  std::vector<data::QwsAttribute> schema_;
  std::vector<WebService> services_;
};

}  // namespace mrsky::qos
