// Wire protocol of the skyline server (ISSUE 6 tentpole).
//
// The server speaks a line-oriented protocol over a plain TCP stream: the
// client sends one request per line, the server answers with exactly one
// JSON line per request. Two request syntaxes share the connection:
//
//  * the `.mrq` script grammar (src/service/script.hpp) — `skyline`,
//    `subspace 0,2`, `skyband 3`, `representative 5`, `topk 10 0.5,0.5`,
//    `insert extra.csv` — so an interactive session types the same commands
//    a script file holds;
//  * a JSON form for programmatic clients:
//      {"query":"skyline"}
//      {"query":"subspace","attributes":[0,2]}
//      {"query":"skyband","k":3}
//      {"query":"representative","k":5}
//      {"query":"topk","k":10,"weights":[0.25,0.75]}
//      {"insert":"extra.csv"}              file on the server, insert_dir-relative
//      {"insert":[[0.1,0.2],[0.3,0.4]]}    inline rows (one array per point)
//      {"insert":[[...]],"ttl_ticks":5}    inline rows expiring after 5 ticks
//      {"delete":[3,17,42]}                delete points by engine id
//      {"command":"metrics"|"stats"|"quit"|"subscribe"|"unsubscribe"}
//    plus the bare control verbs `metrics`, `stats`, `quit`, `subscribe`,
//    `unsubscribe`, and the script verb `delete 3,17,42`.
//
// Streaming (ISSUE 9): `subscribe` answers with `subscribed_line` — the base
// snapshot version AND its full skyline, one atomic handoff — after which the
// server pushes one `delta_line` per published version:
//   {"ok":true,"event":"delta","version":V,"tick":T,"inserted":i,"deleted":d,
//    "expired":e,"missing":m,"entered":[[id,c,...],...],"left":[id,...]}
// Replaying entered/left onto the base skyline in version order reproduces
// every published skyline bitwise. Regular requests still work while
// subscribed; `unsubscribe` stops the pushes with `unsubscribed_line`. A
// server drain cancels subscriptions with the same typed cancelled line a
// query would get.
//
// Per-request deadlines (ISSUE 7): a JSON request may carry
// `"deadline_ms":<n>`, and a `.mrq`-form request may end with a trailing
// `deadline=<n>` token (`skyband 3 deadline=50`); both bound the request's
// wall time from the moment the server parses it. A request whose deadline
// expires mid-pipeline is abandoned cooperatively and answered with a typed
// cancellation line (`cancelled_line`), never a dropped connection.
//
// Responses are single-line JSON objects with an "ok" flag. Doubles are
// rendered with 17 significant digits (%.17g), which round-trips every finite
// IEEE double bit-exactly — the server's bitwise-reproducibility guarantee
// survives the text protocol. Blank lines and `#` comments produce no
// response (they are script furniture, not requests).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "src/dataset/point_set.hpp"
#include "src/service/query.hpp"
#include "src/service/script.hpp"
#include "src/service/stream.hpp"

namespace mrsky::server {

/// Inline insert: the rows arrived on the wire, no file involved.
struct InsertInline {
  data::PointSet points;
  /// Ticks until these rows expire (0 = engine default / no expiry). Applies
  /// to every row of the batch.
  std::int64_t ttl_ticks = 0;
};

/// Per-session aggregate metrics request (`metrics`).
struct MetricsRequest {};

/// Engine-wide stats request (`stats`).
struct StatsRequest {};

/// Orderly session end (`quit`).
struct QuitRequest {};

/// Standing continuous-skyline query registration (`subscribe`).
struct SubscribeRequest {};

/// Ends the session's subscription (`unsubscribe`).
struct UnsubscribeRequest {};

using Request =
    std::variant<service::Query, service::InsertCommand, service::DeleteCommand, InsertInline,
                 MetricsRequest, StatsRequest, QuitRequest, SubscribeRequest, UnsubscribeRequest>;

/// A parsed request plus its lifecycle attributes — today just the optional
/// per-request deadline (-1 = none; the server may substitute its default).
struct RequestEnvelope {
  Request request;
  std::int64_t deadline_ms = -1;
};

/// Parses one request line (either syntax), including the per-request
/// deadline. Returns nullopt for blank / comment lines. Throws
/// mrsky::InvalidArgument on malformed input — the session turns that into an
/// error response, never a dropped connection. `dim` is the resident
/// dataset's dimensionality, used to size-check inline insert rows at the
/// protocol boundary. `max_request_bytes` (0 = unlimited) rejects an
/// oversized request up front, with a byte-offset diagnostic, before the JSON
/// parser allocates a DOM for it.
[[nodiscard]] std::optional<RequestEnvelope> parse_request_line(const std::string& line,
                                                               std::size_t dim,
                                                               std::size_t max_request_bytes = 0);

/// Compatibility shim over parse_request_line: the request alone, deadline
/// discarded, no size cap.
[[nodiscard]] std::optional<Request> parse_request(const std::string& line, std::size_t dim);

/// Shortest decimal rendering that round-trips the exact double (%.17g).
[[nodiscard]] std::string double_repr(double value);

/// `{"ok":false,"error":"..."}`
[[nodiscard]] std::string error_line(const std::string& message);

/// Typed cancellation response:
/// `{"ok":false,"error":"...","cancelled":true,"reason":"deadline"|"cancelled"}`.
/// `deadline` means the request's own time budget ran out; `cancelled` means
/// the server stopped it (drain). Chaos tests and the bench key off the
/// "cancelled" flag to account these separately from real errors.
[[nodiscard]] std::string cancelled_line(const std::string& message, bool deadline_expired);

/// Load-shed response:
/// `{"ok":false,"error":"server at capacity (...)","shed":true,"retry_after_ms":N}`.
/// The retry-after hint is what LineClient::connect_with_backoff honours.
[[nodiscard]] std::string shed_line(std::size_t max_sessions, std::int64_t retry_after_ms);

/// Connection greeting: session id, dataset shape, current snapshot version.
[[nodiscard]] std::string hello_line(std::uint64_t session_id, std::uint64_t version,
                                     std::size_t dataset_size, std::size_t dim);

/// Result of a query: kind, snapshot version, payload (points / ranking /
/// coverage as the kind demands) and this call's QueryMetrics.
[[nodiscard]] std::string result_line(const service::Query& query,
                                      const service::QueryResult& result);

/// Result of an insert: points folded in and the new snapshot version.
[[nodiscard]] std::string insert_line(std::size_t points, std::uint64_t version);

/// Result of a delete tick: ids removed, ids unknown, new snapshot version.
[[nodiscard]] std::string delete_line(const service::StreamDelta& delta);

/// Subscription acknowledgement: the base version plus its FULL skyline (as
/// `[id,c,...]` point arrays) — the atomic starting replica deltas build on.
[[nodiscard]] std::string subscribed_line(std::uint64_t base_version,
                                          const data::PointSet& base_skyline);

/// `{"ok":true,"event":"unsubscribed"}` (idempotent).
[[nodiscard]] std::string unsubscribed_line();

/// One published version's skyline diff, pushed to a subscribed session.
[[nodiscard]] std::string delta_line(const service::StreamDelta& delta);

}  // namespace mrsky::server
