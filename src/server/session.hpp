// One client session against the shared QueryEngine.
//
// A Session owns no transport: the server (or a test) feeds it request lines
// and writes back the response lines it returns. That keeps the whole
// request→response path unit-testable without a socket, and means one session
// object behaves identically over TCP, in the serve CLI, or in-process.
//
// Sessions aggregate the QueryMetrics of every query they execute (ISSUE 6:
// per-session metrics): totals, cache behaviour and wall-time extremes are
// reported by the `metrics` request and collected by the server when the
// session ends, so operators see per-client cost, not just engine-wide sums.
#pragma once

#include <cstdint>
#include <string>

#include "src/server/protocol.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky::server {

/// Aggregated per-session counters. Plain data — owned by one session thread
/// while live, snapshotted by the server on session end.
struct SessionMetrics {
  std::uint64_t id = 0;             ///< session id (1-based accept order)
  std::uint64_t requests = 0;       ///< lines answered (incl. errors)
  std::uint64_t queries = 0;        ///< query requests executed
  std::uint64_t cache_hits = 0;     ///< of which served from the result cache
  std::uint64_t inserts = 0;        ///< insert requests executed
  std::uint64_t points_inserted = 0;
  std::uint64_t points_returned = 0;
  std::uint64_t errors = 0;         ///< malformed / invalid requests
  std::int64_t wall_ns_total = 0;   ///< summed QueryMetrics::wall_ns
  std::int64_t wall_ns_max = 0;     ///< slowest single query
  std::uint64_t last_version = 0;   ///< latest snapshot version this session saw

  /// Folds one query's metrics into the aggregate.
  void aggregate(const service::QueryMetrics& m);

  /// Single-line JSON rendering (the `metrics` response payload).
  [[nodiscard]] std::string to_json() const;
};

class Session {
 public:
  /// `insert_dir`: base directory for relative `insert <path>` requests
  /// (empty = resolve against the process CWD). The engine must outlive the
  /// session.
  Session(std::uint64_t id, service::QueryEngine& engine, std::string insert_dir);

  /// The greeting the server sends on connect.
  [[nodiscard]] std::string greeting() const;

  /// Executes one request line and returns the response line (no trailing
  /// newline), or an empty string for blank/comment lines (no response).
  /// Sets `quit` when the client ended the session. Never throws: malformed
  /// or invalid requests become {"ok":false,...} responses and count into
  /// SessionMetrics::errors.
  [[nodiscard]] std::string handle_line(const std::string& line, bool& quit);

  [[nodiscard]] const SessionMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return metrics_.id; }

 private:
  [[nodiscard]] std::string dispatch(const Request& request, bool& quit);
  [[nodiscard]] std::string run_query(const service::Query& query);
  [[nodiscard]] std::string run_insert_file(const std::string& path);
  [[nodiscard]] std::string run_insert(const data::PointSet& points);

  service::QueryEngine& engine_;
  std::string insert_dir_;
  SessionMetrics metrics_;
};

}  // namespace mrsky::server
