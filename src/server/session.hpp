// One client session against the shared QueryEngine.
//
// A Session owns no transport: the server (or a test) feeds it request lines
// and writes back the response lines it returns. That keeps the whole
// request→response path unit-testable without a socket, and means one session
// object behaves identically over TCP, in the serve CLI, or in-process.
//
// Sessions aggregate the QueryMetrics of every query they execute (ISSUE 6:
// per-session metrics): totals, cache behaviour and wall-time extremes are
// reported by the `metrics` request and collected by the server when the
// session ends, so operators see per-client cost, not just engine-wide sums.
//
// Request lifecycle (ISSUE 7): every session holds one CancellationToken for
// its whole life — the server keeps a copy and cancels it to drain. Around
// each query the session arms the token with the request's deadline (its own
// `deadline_ms`, else the server default) and clears it afterwards; a query
// stopped by either signal is answered with a typed cancellation line and
// counted in `cancelled` / `deadline_missed`, never in `errors`.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/sync.hpp"
#include "src/server/protocol.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky::server {

/// Aggregated per-session counters. Plain data — owned by one session thread
/// while live, snapshotted by the server on session end.
struct SessionMetrics {
  std::uint64_t id = 0;             ///< session id (1-based accept order)
  std::uint64_t requests = 0;       ///< lines answered (incl. errors)
  std::uint64_t queries = 0;        ///< query requests executed
  std::uint64_t cache_hits = 0;     ///< of which served from the result cache
  std::uint64_t inserts = 0;        ///< insert requests executed
  std::uint64_t points_inserted = 0;
  std::uint64_t deletes = 0;        ///< delete requests executed
  std::uint64_t points_deleted = 0;
  std::uint64_t deltas_sent = 0;    ///< subscription delta lines pushed
  std::uint64_t points_returned = 0;
  std::uint64_t errors = 0;         ///< malformed / invalid requests
  std::uint64_t cancelled = 0;      ///< queries stopped by server cancel (drain)
  std::uint64_t deadline_missed = 0;  ///< queries stopped by their deadline
  std::int64_t wall_ns_total = 0;   ///< summed QueryMetrics::wall_ns
  std::int64_t wall_ns_max = 0;     ///< slowest single query
  std::uint64_t last_version = 0;   ///< latest snapshot version this session saw

  /// Folds one query's metrics into the aggregate.
  void aggregate(const service::QueryMetrics& m);

  /// Single-line JSON rendering (the `metrics` response payload).
  [[nodiscard]] std::string to_json() const;
};

/// Per-session policy the server configures once at accept time.
struct SessionOptions {
  /// Base directory for relative `insert <path>` requests (empty = resolve
  /// against the process CWD).
  std::string insert_dir;
  /// Deadline applied to queries that do not carry their own (-1 = none).
  std::int64_t default_deadline_ms = -1;
  /// Longest request line accepted by the parser (0 = unlimited); oversized
  /// requests are rejected with a byte-offset diagnostic before any JSON DOM
  /// is allocated.
  std::size_t max_request_bytes = 0;
};

class Session {
 public:
  /// Compatibility form: options all default. The engine must outlive the
  /// session.
  Session(std::uint64_t id, service::QueryEngine& engine, std::string insert_dir);

  /// `token` is the session-lifetime cancellation handle; the caller keeps a
  /// copy to cancel the session from outside (the server's drain). An inert
  /// token is replaced with a private armed one, so deadlines always work.
  Session(std::uint64_t id, service::QueryEngine& engine, SessionOptions options,
          common::CancellationToken token = {});

  /// The greeting the server sends on connect.
  [[nodiscard]] std::string greeting() const;

  /// Executes one request line and returns the response line (no trailing
  /// newline), or an empty string for blank/comment lines (no response).
  /// Sets `quit` when the client ended the session. Never throws: malformed
  /// or invalid requests become {"ok":false,...} responses and count into
  /// SessionMetrics::errors; cancelled/deadline-stopped queries become typed
  /// cancellation responses and count into their own counters.
  [[nodiscard]] std::string handle_line(const std::string& line, bool& quit);

  [[nodiscard]] const SessionMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return metrics_.id; }

  /// The session's cancellation handle (shared state with the server's copy).
  [[nodiscard]] const common::CancellationToken& token() const noexcept { return token_; }

  /// The session's standing subscription, or nullptr. The transport layer
  /// drains it between request lines (same thread as handle_line — no lock).
  [[nodiscard]] const service::StreamSubscriptionPtr& subscription() const noexcept {
    return sub_;
  }

  /// Accounts delta lines the transport pushed for this session.
  void note_deltas(std::uint64_t n) noexcept { metrics_.deltas_sent += n; }

 private:
  [[nodiscard]] std::string dispatch(const Request& request, std::int64_t deadline_ms,
                                     bool& quit);
  [[nodiscard]] std::string run_query(const service::Query& query, std::int64_t deadline_ms);
  [[nodiscard]] std::string run_insert_file(const std::string& path);
  [[nodiscard]] std::string run_insert(const data::PointSet& points, std::int64_t ttl_ticks);
  [[nodiscard]] std::string run_delete(const service::DeleteCommand& command);
  [[nodiscard]] std::string run_subscribe();

  service::QueryEngine& engine_;
  SessionOptions options_;
  common::CancellationToken token_;
  SessionMetrics metrics_;
  service::StreamSubscriptionPtr sub_;
};

}  // namespace mrsky::server
