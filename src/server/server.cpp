#include "src/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "src/common/error.hpp"
#include "src/server/protocol.hpp"

namespace mrsky::server {

namespace {

std::string sys_error(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Writes the whole line plus '\n'. MSG_NOSIGNAL: a client that hung up turns
/// into an error return here, not a process-wide SIGPIPE. With SO_SNDTIMEO
/// set on the socket, a stalled reader makes send() fail with EAGAIN instead
/// of blocking the session thread forever.
bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// How a LineReader::next() call ended.
enum class ReadOutcome {
  kLine,      ///< a full request line was produced
  kEof,       ///< orderly end of stream (client hung up / read side shut down)
  kTimeout,   ///< idle deadline passed without a complete line
  kOverflow,  ///< the line grew past the configured cap
};

/// Buffered line reader over a connection fd: poll(2) for readability with a
/// per-line idle deadline, recv() into a chunk, split on '\n'; a trailing
/// '\r' (telnet-style clients) is stripped.
///
/// The idle deadline is armed when next() starts waiting and is NOT reset by
/// arriving bytes — only by completing a line. A slowloris client dribbling
/// one byte per tick therefore times out exactly like a silent one. The line
/// cap bounds buffer growth: the reader reports kOverflow as soon as the
/// unterminated prefix exceeds it, without waiting for a newline that may
/// never come.
class LineReader {
 public:
  /// Sentinel for next(): use the reader's configured idle timeout.
  static constexpr std::int64_t kConfiguredTimeout = std::numeric_limits<std::int64_t>::min();

  LineReader(int fd, std::int64_t idle_timeout_ms, std::size_t max_line_bytes)
      : fd_(fd), idle_timeout_ms_(idle_timeout_ms), max_line_bytes_(max_line_bytes) {}

  /// `timeout_override_ms` replaces the configured idle timeout for this one
  /// call (0 = non-blocking poll, the subscription pump's interleaved-request
  /// check; <0 = wait forever). Bytes already buffered are consumed either
  /// way, so an override can never lose a partially received request.
  ReadOutcome next(std::string& out, std::int64_t timeout_override_ms = kConfiguredTimeout) {
    const std::int64_t timeout_ms =
        timeout_override_ms == kConfiguredTimeout ? idle_timeout_ms_ : timeout_override_ms;
    const common::Deadline idle =
        timeout_ms < 0 ? common::Deadline{} : common::Deadline::after_ms(timeout_ms);
    for (;;) {
      const std::size_t newline = buffer_.find('\n', scan_from_);
      if (newline != std::string::npos) {
        if (max_line_bytes_ > 0 && newline > max_line_bytes_) return ReadOutcome::kOverflow;
        out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        scan_from_ = 0;
        if (!out.empty() && out.back() == '\r') out.pop_back();
        return ReadOutcome::kLine;
      }
      scan_from_ = buffer_.size();
      if (max_line_bytes_ > 0 && buffer_.size() > max_line_bytes_) {
        return ReadOutcome::kOverflow;
      }

      if (idle.engaged()) {
        // poll() decides, even at remaining==0: bytes already queued on the
        // socket are still read on a non-blocking (0 ms) call.
        const std::int64_t remaining = idle.remaining_ms();
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
        if (ready < 0 && errno == EINTR) continue;
        if (ready == 0) return ReadOutcome::kTimeout;
        if (ready < 0) return ReadOutcome::kEof;
      }

      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        if (buffer_.empty()) return ReadOutcome::kEof;
        // Be liberal in what we accept: a final unframed fragment before EOF
        // is delivered as a line.
        out = std::move(buffer_);
        buffer_.clear();
        scan_from_ = 0;
        if (!out.empty() && out.back() == '\r') out.pop_back();
        return ReadOutcome::kLine;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::int64_t idle_timeout_ms_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t scan_from_ = 0;
};

}  // namespace

SkylineServer::SkylineServer(service::QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)), slots_(options_.max_sessions) {
  MRSKY_REQUIRE(options_.max_sessions >= 1, "max_sessions must be >= 1");
  MRSKY_REQUIRE(options_.backlog >= 1, "backlog must be >= 1");
  MRSKY_REQUIRE(options_.drain_grace_ms >= 0, "drain_grace_ms must be >= 0");
  MRSKY_REQUIRE(options_.retry_after_ms >= 0, "retry_after_ms must be >= 0");
}

SkylineServer::~SkylineServer() { stop(); }

void SkylineServer::start() {
  MRSKY_REQUIRE(listen_fd_ < 0, "server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MRSKY_REQUIRE(fd >= 0, sys_error("socket"));

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = sys_error("bind 127.0.0.1:" + std::to_string(options_.port));
    ::close(fd);
    MRSKY_FAIL(msg);
  }
  if (::listen(fd, options_.backlog) != 0) {
    const std::string msg = sys_error("listen");
    ::close(fd);
    MRSKY_FAIL(msg);
  }

  // Resolve port=0 to the kernel's ephemeral choice.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string msg = sys_error("getsockname");
    ::close(fd);
    MRSKY_FAIL(msg);
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

bool SkylineServer::all_connections_done() const {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& conn : connections_) {
    if (!conn->done) return false;
  }
  return true;
}

void SkylineServer::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(2); close() alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Graceful drain, step 1: half-close every live connection's READ side.
  // Sessions waiting for a request see EOF immediately and exit; a session
  // mid-query keeps its write side, so its in-flight response (or typed
  // cancellation line) still reaches the client — not a dropped connection.
  // Subscribed connections are cancelled through their tokens instead: their
  // pump loop notices and answers with the typed cancellation line, so a
  // standing subscription ends explicitly, never as a silent EOF.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (conn->done) continue;
      if (conn->subscribed.load(std::memory_order_acquire)) {
        conn->token.request_cancel();
        drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ::shutdown(conn->fd, SHUT_RD);
      }
    }
  }

  // Step 2: give in-flight queries one grace period to finish naturally.
  const auto wait_until_drained = [this](std::int64_t grace_ms) {
    const common::Deadline grace = common::Deadline::after_ms(grace_ms);
    while (!all_connections_done() && !grace.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  wait_until_drained(options_.drain_grace_ms);

  // Step 3: cooperatively cancel the stragglers. Their pipelines observe the
  // token at the next split boundary, unwind with QueryCancelled, and the
  // session answers with a well-formed cancellation line before exiting.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done) {
        // Don't double-count a subscribed connection already cancelled in
        // step 1 (request_cancel itself is idempotent).
        if (conn->token.stop_reason() != common::StopReason::kCancelled) {
          drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
        }
        conn->token.request_cancel();
      }
    }
  }
  wait_until_drained(options_.drain_grace_ms);

  // Step 4: anything still alive is beyond cooperation (e.g. blocked in a
  // send to a stalled client past SO_SNDTIMEO) — sever it.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }

  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.back());
      connections_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
}

SkylineServer::Stats SkylineServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = s.rejected;
  s.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  s.oversized_lines = oversized_lines_.load(std::memory_order_relaxed);
  s.drain_cancelled = drain_cancelled_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SkylineServer::active_sessions() const {
  return options_.max_sessions - slots_.available();
}

std::vector<SessionMetrics> SkylineServer::completed_sessions() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return completed_;
}

void SkylineServer::accept_loop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (stop()) or fatal error
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }

    // Admission control: take a session slot or shed the connection with one
    // structured rejection line carrying the retry-after hint. The slot is
    // released by the connection thread.
    if (!slots_.try_acquire()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_line(fd, shed_line(options_.max_sessions, options_.retry_after_ms));
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    reap_finished();

    std::lock_guard<std::mutex> lock(connections_mutex_);
    const std::uint64_t session_id = ++next_session_id_;
    connections_.push_back(std::make_unique<Connection>());
    Connection* conn = connections_.back().get();
    conn->fd = fd;
    conn->token = common::CancellationToken::make();
    conn->thread = std::thread(
        [this, conn, session_id] { serve_connection(conn, session_id); });
  }
}

void SkylineServer::serve_connection(Connection* conn, std::uint64_t session_id) {
  if (options_.send_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.send_timeout_ms / 1000;
    tv.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
    ::setsockopt(conn->fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }

  SessionOptions sopts;
  sopts.insert_dir = options_.insert_dir;
  sopts.default_deadline_ms = options_.default_deadline_ms;
  sopts.max_request_bytes = options_.max_line_bytes;
  Session session(session_id, engine_, std::move(sopts), conn->token);

  if (send_line(conn->fd, session.greeting())) {
    LineReader reader(conn->fd, options_.idle_timeout_ms, options_.max_line_bytes);
    bool quit = false;
    while (!quit) {
      const bool subscribed = session.subscription() != nullptr;
      conn->subscribed.store(subscribed, std::memory_order_release);

      std::string line;
      ReadOutcome outcome;
      if (subscribed) {
        // Subscription pump: a drain cancel ends the subscription with the
        // same typed line a cancelled query gets; otherwise wait briefly on
        // the delta queue, push everything pending, then poll the socket
        // without blocking for an interleaved request.
        if (conn->token.stop_reason() == common::StopReason::kCancelled) {
          send_line(conn->fd, cancelled_line("subscription cancelled: server draining",
                                             /*deadline_expired=*/false));
          break;
        }
        const service::StreamSubscriptionPtr& sub = session.subscription();
        std::optional<service::StreamDelta> delta = sub->next(/*timeout_ms=*/25);
        bool write_failed = false;
        std::uint64_t pushed = 0;
        while (delta.has_value()) {
          if (!send_line(conn->fd, delta_line(*delta))) {
            write_failed = true;
            break;
          }
          ++pushed;
          delta = sub->next(/*timeout_ms=*/0);
        }
        session.note_deltas(pushed);
        if (write_failed) break;
        outcome = reader.next(line, /*timeout_override_ms=*/0);
        if (outcome == ReadOutcome::kTimeout) continue;  // no request pending: keep pumping
      } else {
        outcome = reader.next(line);
        if (outcome == ReadOutcome::kTimeout) {
          idle_reaped_.fetch_add(1, std::memory_order_relaxed);
          send_line(conn->fd, error_line("idle timeout: no complete request within " +
                                         std::to_string(options_.idle_timeout_ms) + " ms"));
          break;
        }
      }
      if (outcome == ReadOutcome::kEof) break;  // client hung up / drain
      if (outcome == ReadOutcome::kOverflow) {
        oversized_lines_.fetch_add(1, std::memory_order_relaxed);
        send_line(conn->fd, error_line("request line exceeds " +
                                       std::to_string(options_.max_line_bytes) + " bytes"));
        break;
      }
      const std::string response = session.handle_line(line, quit);
      // Publish the subscription state before the ack leaves the socket:
      // once the client has read the "subscribed" response, stop() must see
      // this connection as subscribed, or a drain racing the next loop
      // iteration would half-close it instead of sending the typed line.
      conn->subscribed.store(session.subscription() != nullptr,
                             std::memory_order_release);
      if (response.empty()) continue;  // blank / comment line
      if (!send_line(conn->fd, response)) break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    completed_.push_back(session.metrics());
  }
  slots_.release();
  // done is published and the fd closed under the same lock stop() uses to
  // decide whether to shutdown() this fd — no window where stop() touches a
  // closed (possibly reused) descriptor.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conn->done = true;
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void SkylineServer::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace mrsky::server
