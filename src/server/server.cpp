#include "src/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/error.hpp"
#include "src/server/protocol.hpp"

namespace mrsky::server {

namespace {

std::string sys_error(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Writes the whole line plus '\n'. MSG_NOSIGNAL: a client that hung up turns
/// into an error return here, not a process-wide SIGPIPE.
bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Buffered line reader over a connection fd. recv() into a chunk, split on
/// '\n'; a trailing '\r' (telnet-style clients) is stripped.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next full line, or nullopt on EOF / error / shutdown. A final unframed
  /// fragment before EOF is delivered as a line (be liberal in what we
  /// accept).
  std::optional<std::string> next() {
    for (;;) {
      const std::size_t newline = buffer_.find('\n', scan_from_);
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        scan_from_ = 0;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      scan_from_ = buffer_.size();
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        if (buffer_.empty()) return std::nullopt;
        std::string line = std::move(buffer_);
        buffer_.clear();
        scan_from_ = 0;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  std::size_t scan_from_ = 0;
};

}  // namespace

SkylineServer::SkylineServer(service::QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)), slots_(options_.max_sessions) {
  MRSKY_REQUIRE(options_.max_sessions >= 1, "max_sessions must be >= 1");
  MRSKY_REQUIRE(options_.backlog >= 1, "backlog must be >= 1");
}

SkylineServer::~SkylineServer() { stop(); }

void SkylineServer::start() {
  MRSKY_REQUIRE(listen_fd_ < 0, "server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MRSKY_REQUIRE(fd >= 0, sys_error("socket"));

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = sys_error("bind 127.0.0.1:" + std::to_string(options_.port));
    ::close(fd);
    MRSKY_FAIL(msg);
  }
  if (::listen(fd, options_.backlog) != 0) {
    const std::string msg = sys_error("listen");
    ::close(fd);
    MRSKY_FAIL(msg);
  }

  // Resolve port=0 to the kernel's ephemeral choice.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string msg = sys_error("getsockname");
    ::close(fd);
    MRSKY_FAIL(msg);
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SkylineServer::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(2); close() alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Unblock every live connection's recv(); the threads notice EOF, finish
  // their session and exit. Connection threads own (and close) their fds.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.back());
      connections_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
}

SkylineServer::Stats SkylineServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SkylineServer::active_sessions() const {
  return options_.max_sessions - slots_.available();
}

std::vector<SessionMetrics> SkylineServer::completed_sessions() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return completed_;
}

void SkylineServer::accept_loop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (stop()) or fatal error
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }

    // Admission control: take a session slot or turn the connection away with
    // one explicit error line. The slot is released by the connection thread.
    if (!slots_.try_acquire()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_line(fd, error_line("server at capacity (" +
                               std::to_string(options_.max_sessions) +
                               " sessions); retry later"));
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    reap_finished();

    std::lock_guard<std::mutex> lock(connections_mutex_);
    const std::uint64_t session_id = ++next_session_id_;
    connections_.push_back(std::make_unique<Connection>());
    Connection* conn = connections_.back().get();
    conn->fd = fd;
    conn->thread = std::thread(
        [this, conn, session_id] { serve_connection(conn, session_id); });
  }
}

void SkylineServer::serve_connection(Connection* conn, std::uint64_t session_id) {
  Session session(session_id, engine_, options_.insert_dir);
  if (send_line(conn->fd, session.greeting())) {
    LineReader reader(conn->fd);
    bool quit = false;
    while (!quit) {
      const std::optional<std::string> line = reader.next();
      if (!line.has_value()) break;  // client hung up / server stopping
      const std::string response = session.handle_line(*line, quit);
      if (response.empty()) continue;  // blank / comment line
      if (!send_line(conn->fd, response)) break;
    }
  }
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    completed_.push_back(session.metrics());
  }
  slots_.release();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conn->done = true;
  }
}

void SkylineServer::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace mrsky::server
