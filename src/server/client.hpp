// Minimal blocking client for the skyline server's line protocol.
//
// One connection, synchronous request/response. This is the building block
// the load bench and the server tests stand on: connect(), read the greeting,
// then request() per line. It deliberately has no retry / reconnect logic —
// a failed send or an EOF is a fact the caller (bench, test) wants to see,
// not paper over.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mrsky::server {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to host:port. Throws mrsky::InvalidArgument on failure. Does
  /// NOT read the greeting — call recv_line() for it.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request line (newline appended). Returns false if the peer is
  /// gone.
  [[nodiscard]] bool send_line(const std::string& line);

  /// Blocks for the next response line; nullopt on EOF / error.
  [[nodiscard]] std::optional<std::string> recv_line();

  /// send_line + recv_line in one step.
  [[nodiscard]] std::optional<std::string> request(const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mrsky::server
