// Minimal blocking client for the skyline server's line protocol.
//
// One connection, synchronous request/response. This is the building block
// the load bench and the server tests stand on: connect(), read the greeting,
// then request() per line. A failed send or an EOF is a fact the caller
// (bench, test) wants to see, not paper over — the only conveniences layered
// on top are the ones robustness demands (ISSUE 7):
//
//  * an optional receive timeout, so a server that dies mid-response turns
//    into a visible timeout instead of a client thread blocked forever in
//    recv(2);
//  * connect_with_backoff(), which honours the server's structured
//    `retry_after_ms` shed hint with exponential backoff + jitter — the
//    polite way through a loaded server's admission control.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mrsky::server {

/// Reconnect policy for LineClient::connect_with_backoff().
struct BackoffOptions {
  /// Connection attempts before giving up (>= 1).
  std::size_t max_attempts = 6;
  /// Sleep before retry k (0-based) is `max(hint, base_delay_ms) << k`,
  /// jittered by up to +50%; `hint` is the server's retry_after_ms when the
  /// attempt was shed, 0 when the connection itself failed.
  std::int64_t base_delay_ms = 10;
  /// Hard cap on any single sleep.
  std::int64_t max_delay_ms = 1000;
  /// Seed for the jitter stream (deterministic per client; vary per session
  /// in multi-client harnesses to avoid synchronised retry storms).
  std::uint64_t jitter_seed = 0x5EED;
};

/// What LineClient::connect_with_backoff observed.
struct ConnectResult {
  bool connected = false;
  std::string greeting;        ///< the server's hello line (when connected)
  std::size_t attempts = 0;    ///< connection attempts consumed
  std::size_t sheds = 0;       ///< attempts rejected by admission control
};

class LineClient {
 public:
  /// Compatibility aliases: these started life as nested types.
  using BackoffOptions = server::BackoffOptions;
  using ConnectResult = server::ConnectResult;

  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to host:port. Throws mrsky::InvalidArgument on failure. Does
  /// NOT read the greeting — call recv_line() for it.
  void connect(const std::string& host, std::uint16_t port);

  /// Connects with retry: a shed rejection (the server's at-capacity line
  /// with its `retry_after_ms` hint) or a failed connect sleeps with
  /// exponential backoff + jitter and tries again, up to `max_attempts`.
  /// Never throws for capacity/connect failures — the result says what
  /// happened; on success the greeting has already been consumed.
  [[nodiscard]] ConnectResult connect_with_backoff(const std::string& host, std::uint16_t port,
                                                   const BackoffOptions& options = {});

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Receive timeout for recv_line()/request() (-1 = block forever, the
  /// default). After a timeout the connection is still usable — a late
  /// response will be picked up by the next recv_line().
  void set_recv_timeout_ms(std::int64_t ms) noexcept { recv_timeout_ms_ = ms; }

  /// True when the LAST recv_line() returned nullopt because of the receive
  /// timeout rather than EOF/error.
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

  /// Sends one request line (newline appended). Returns false if the peer is
  /// gone.
  [[nodiscard]] bool send_line(const std::string& line);

  /// Sends bytes verbatim — no newline, no framing. For clients that
  /// deliberately split a request across writes (slow-client load shapes,
  /// chaos tests); pair with send_raw("\n") to complete the line.
  [[nodiscard]] bool send_raw(const std::string& bytes);

  /// Blocks for the next response line; nullopt on EOF / error / receive
  /// timeout (distinguish with timed_out()).
  [[nodiscard]] std::optional<std::string> recv_line();

  /// send_line + recv_line in one step.
  [[nodiscard]] std::optional<std::string> request(const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
  std::int64_t recv_timeout_ms_ = -1;
  bool timed_out_ = false;
};

}  // namespace mrsky::server
