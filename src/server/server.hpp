// Concurrent multi-session TCP front end over one shared QueryEngine
// (ISSUE 6 tentpole; request-lifecycle hardening in ISSUE 7).
//
// The server binds a loopback listening socket, accepts connections on a
// dedicated accept thread, and serves each admitted connection on its own
// thread: read a line, hand it to the connection's Session, write the
// response line back. All sessions share ONE QueryEngine — the engine's MVCC
// snapshot contract (query_engine.hpp) is what makes that safe, and what the
// stress/bench harnesses verify bitwise.
//
// Admission control: at most `max_sessions` connections are served at once
// (a common::Semaphore slot per session). A connection that arrives with all
// slots busy is shed in one structured error line carrying a
// `retry_after_ms` hint and closed immediately — the §II serving scenario
// prefers a fast, explicit rejection over an unbounded accept queue that
// silently stretches every client's latency.
//
// Robustness (ISSUE 7): connection reads go through poll(2), so an idle (or
// byte-dribbling slowloris) session is reaped after `idle_timeout_ms`
// measured from the start of each line — receiving bytes does NOT reset the
// clock, only completing a line does. Request lines are capped at
// `max_line_bytes`; an overflowing client gets one error line and the
// connection is closed before its line can grow the buffer further. Writes
// carry SO_SNDTIMEO so a stalled reader cannot wedge a session thread.
//
// Streaming (ISSUE 9): a connection whose session holds a subscription is
// served by a pump loop instead of the blocking read: wait briefly on the
// subscription queue, push every pending `delta_line`, then poll the socket
// without blocking for interleaved requests. Regular queries keep working
// while subscribed. A server drain treats a subscribed connection like an
// in-flight query — its token is cancelled so the pump answers with the same
// typed cancellation line before the connection ends.
//
// Lifecycle: start() binds/listens and launches the accept loop; stop()
// drains gracefully — stop accepting, half-close every connection's read
// side (idle sessions see EOF at once; in-flight queries can still answer;
// subscribed connections are instead cancelled through their tokens so the
// pump can emit its typed line), wait `drain_grace_ms`, cooperatively cancel
// the stragglers through their session CancellationTokens (they answer with
// a typed cancellation line), wait one more grace period, force-close
// whatever is left, then join all threads. The destructor calls stop().
// Completed sessions leave their SessionMetrics behind for the operator
// report (completed_sessions()).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.hpp"
#include "src/server/session.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1. 0 = let the kernel pick an ephemeral
  /// port; read it back with port() after start().
  std::uint16_t port = 0;

  /// Concurrent session cap (admission-control slots). Must be >= 1.
  std::size_t max_sessions = 8;

  /// Base directory for relative `insert <path>` requests (empty = process
  /// CWD). The serve CLI defaults this to the input file's directory.
  std::string insert_dir;

  /// listen(2) backlog for not-yet-accepted connections.
  int backlog = 16;

  /// Deadline applied to queries that do not carry their own `deadline_ms`
  /// (-1 = none).
  std::int64_t default_deadline_ms = -1;

  /// Reap a session that has not completed a request line within this many
  /// milliseconds (-1 = never). The clock runs from the moment the server
  /// starts waiting for the line — a slowloris dribbling one byte per tick
  /// cannot keep resetting it.
  std::int64_t idle_timeout_ms = -1;

  /// Longest request line accepted (bytes, 0 = unlimited). An overflowing
  /// connection gets one error line and is closed.
  std::size_t max_line_bytes = std::size_t{1} << 20;

  /// How long stop() waits for in-flight work at each drain step: once for
  /// queries to finish naturally, then once more for cooperative cancellation
  /// to take effect before the force-close.
  std::int64_t drain_grace_ms = 250;

  /// SO_SNDTIMEO on connection sockets: a response write blocked longer than
  /// this fails, ending the session instead of wedging its thread (0 = no
  /// timeout).
  std::int64_t send_timeout_ms = 2000;

  /// The `retry_after_ms` hint sent with a shed (at-capacity) rejection.
  std::int64_t retry_after_ms = 25;
};

class SkylineServer {
 public:
  /// The engine must outlive the server.
  SkylineServer(service::QueryEngine& engine, ServerOptions options);
  ~SkylineServer();

  SkylineServer(const SkylineServer&) = delete;
  SkylineServer& operator=(const SkylineServer&) = delete;

  /// Binds 127.0.0.1:port, starts listening and launches the accept loop.
  /// Throws mrsky::InvalidArgument on bad options or socket failure.
  void start();

  /// Stops accepting and drains: grace period → cooperative cancel → second
  /// grace → force close → join every thread. Idempotent; safe to call with
  /// start() never having run.
  void stop();

  /// The bound port (resolves port=0 to the kernel's choice). Valid after
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Lifetime accept-loop / lifecycle counters.
  struct Stats {
    std::uint64_t accepted = 0;  ///< connections admitted to a session
    std::uint64_t rejected = 0;  ///< connections turned away at capacity
    std::uint64_t shed = 0;      ///< alias of rejected (graceful-degradation name)
    std::uint64_t idle_reaped = 0;      ///< sessions closed by the idle timeout
    std::uint64_t oversized_lines = 0;  ///< sessions closed for a too-long line
    std::uint64_t drain_cancelled = 0;  ///< sessions cooperatively cancelled by stop()
  };
  [[nodiscard]] Stats stats() const;

  /// Live sessions right now (admission slots in use).
  [[nodiscard]] std::size_t active_sessions() const;

  /// Metrics of every session that has ended, in completion order.
  [[nodiscard]] std::vector<SessionMetrics> completed_sessions() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    bool done = false;  ///< set by the connection thread as it exits
    common::CancellationToken token;  ///< session-lifetime cancel handle
    /// True while the session holds a standing subscription — stop() cancels
    /// these through the token (typed line) instead of half-closing the read
    /// side (silent EOF).
    std::atomic<bool> subscribed{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn, std::uint64_t session_id);
  /// Joins finished connection threads and drops their entries. Caller must
  /// NOT hold connections_mutex_.
  void reap_finished();
  /// True when every registered connection has finished its session.
  [[nodiscard]] bool all_connections_done() const;

  service::QueryEngine& engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  common::Semaphore slots_;

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_session_id_ = 0;

  mutable std::mutex metrics_mutex_;
  std::vector<SessionMetrics> completed_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> oversized_lines_{0};
  std::atomic<std::uint64_t> drain_cancelled_{0};
};

}  // namespace mrsky::server
