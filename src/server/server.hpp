// Concurrent multi-session TCP front end over one shared QueryEngine
// (ISSUE 6 tentpole).
//
// The server binds a loopback listening socket, accepts connections on a
// dedicated accept thread, and serves each admitted connection on its own
// thread: read a line, hand it to the connection's Session, write the
// response line back. All sessions share ONE QueryEngine — the engine's MVCC
// snapshot contract (query_engine.hpp) is what makes that safe, and what the
// stress/bench harnesses verify bitwise.
//
// Admission control: at most `max_sessions` connections are served at once
// (a common::Semaphore slot per session). A connection that arrives with all
// slots busy is told so in one error line and closed immediately — the §II
// serving scenario prefers a fast, explicit rejection over an unbounded
// accept queue that silently stretches every client's latency.
//
// Lifecycle: start() binds/listens and launches the accept loop; stop()
// shuts the listening socket and every live connection down, then joins all
// threads. The destructor calls stop(). Completed sessions leave their
// SessionMetrics behind for the operator report (completed_sessions()).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.hpp"
#include "src/server/session.hpp"
#include "src/service/query_engine.hpp"

namespace mrsky::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1. 0 = let the kernel pick an ephemeral
  /// port; read it back with port() after start().
  std::uint16_t port = 0;

  /// Concurrent session cap (admission-control slots). Must be >= 1.
  std::size_t max_sessions = 8;

  /// Base directory for relative `insert <path>` requests (empty = process
  /// CWD). The serve CLI defaults this to the input file's directory.
  std::string insert_dir;

  /// listen(2) backlog for not-yet-accepted connections.
  int backlog = 16;
};

class SkylineServer {
 public:
  /// The engine must outlive the server.
  SkylineServer(service::QueryEngine& engine, ServerOptions options);
  ~SkylineServer();

  SkylineServer(const SkylineServer&) = delete;
  SkylineServer& operator=(const SkylineServer&) = delete;

  /// Binds 127.0.0.1:port, starts listening and launches the accept loop.
  /// Throws mrsky::InvalidArgument on bad options or socket failure.
  void start();

  /// Stops accepting, shuts down live connections, joins every thread.
  /// Idempotent; safe to call with start() never having run.
  void stop();

  /// The bound port (resolves port=0 to the kernel's choice). Valid after
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Lifetime accept-loop counters.
  struct Stats {
    std::uint64_t accepted = 0;  ///< connections admitted to a session
    std::uint64_t rejected = 0;  ///< connections turned away at capacity
  };
  [[nodiscard]] Stats stats() const;

  /// Live sessions right now (admission slots in use).
  [[nodiscard]] std::size_t active_sessions() const;

  /// Metrics of every session that has ended, in completion order.
  [[nodiscard]] std::vector<SessionMetrics> completed_sessions() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    bool done = false;  ///< set by the connection thread as it exits
  };

  void accept_loop();
  void serve_connection(Connection* conn, std::uint64_t session_id);
  /// Joins finished connection threads and drops their entries. Caller must
  /// NOT hold connections_mutex_.
  void reap_finished();

  service::QueryEngine& engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  common::Semaphore slots_;

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_session_id_ = 0;

  mutable std::mutex metrics_mutex_;
  std::vector<SessionMetrics> completed_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace mrsky::server
