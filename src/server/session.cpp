#include "src/server/session.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/common/error.hpp"
#include "src/dataset/io.hpp"
#include "src/dataset/record_file.hpp"

namespace mrsky::server {

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void SessionMetrics::aggregate(const service::QueryMetrics& m) {
  ++queries;
  if (m.cache_hit) ++cache_hits;
  points_returned += m.result_points;
  wall_ns_total += m.wall_ns;
  wall_ns_max = std::max(wall_ns_max, m.wall_ns);
  last_version = std::max(last_version, m.dataset_version);
}

std::string SessionMetrics::to_json() const {
  return "{\"ok\":true,\"session\":" + std::to_string(id) +
         ",\"requests\":" + std::to_string(requests) +
         ",\"queries\":" + std::to_string(queries) +
         ",\"cache_hits\":" + std::to_string(cache_hits) +
         ",\"inserts\":" + std::to_string(inserts) +
         ",\"points_inserted\":" + std::to_string(points_inserted) +
         ",\"points_returned\":" + std::to_string(points_returned) +
         ",\"errors\":" + std::to_string(errors) +
         ",\"wall_ns_total\":" + std::to_string(wall_ns_total) +
         ",\"wall_ns_max\":" + std::to_string(wall_ns_max) +
         ",\"last_version\":" + std::to_string(last_version) + "}";
}

Session::Session(std::uint64_t id, service::QueryEngine& engine, std::string insert_dir)
    : engine_(engine), insert_dir_(std::move(insert_dir)) {
  metrics_.id = id;
}

std::string Session::greeting() const {
  const service::EngineSnapshotPtr snap = engine_.snapshot();
  return hello_line(metrics_.id, snap->version, snap->dataset->size(), snap->dataset->dim());
}

std::string Session::handle_line(const std::string& line, bool& quit) {
  quit = false;
  try {
    const std::optional<Request> request = parse_request(line, engine_.snapshot()->dataset->dim());
    if (!request.has_value()) return "";  // blank / comment: no response
    ++metrics_.requests;
    return dispatch(*request, quit);
  } catch (const std::exception& e) {
    ++metrics_.requests;
    ++metrics_.errors;
    return error_line(e.what());
  }
}

std::string Session::dispatch(const Request& request, bool& quit) {
  if (std::holds_alternative<QuitRequest>(request)) {
    quit = true;
    return "{\"ok\":true,\"bye\":" + std::to_string(metrics_.id) + "}";
  }
  if (std::holds_alternative<MetricsRequest>(request)) return metrics_.to_json();
  if (std::holds_alternative<StatsRequest>(request)) {
    const service::QueryEngine::Stats s = engine_.stats();
    const service::EngineSnapshotPtr snap = engine_.snapshot();
    return "{\"ok\":true,\"queries\":" + std::to_string(s.queries) +
           ",\"cache_hits\":" + std::to_string(s.cache_hits) +
           ",\"fits_computed\":" + std::to_string(s.fits_computed) +
           ",\"fit_reuses\":" + std::to_string(s.fit_reuses) +
           ",\"pipeline_runs\":" + std::to_string(s.pipeline_runs) +
           ",\"incremental_serves\":" + std::to_string(s.incremental_serves) +
           ",\"inserts\":" + std::to_string(s.inserts) +
           ",\"points_inserted\":" + std::to_string(s.points_inserted) +
           ",\"cache_evictions\":" + std::to_string(s.cache_evictions) +
           ",\"dataset_points\":" + std::to_string(snap->dataset->size()) +
           ",\"version\":" + std::to_string(snap->version) + "}";
  }
  if (const auto* insert = std::get_if<service::InsertCommand>(&request)) {
    return run_insert_file(insert->path);
  }
  if (const auto* inline_insert = std::get_if<InsertInline>(&request)) {
    return run_insert(inline_insert->points);
  }
  return run_query(std::get<service::Query>(request));
}

std::string Session::run_query(const service::Query& query) {
  const service::QueryResult result = engine_.execute(query);
  metrics_.aggregate(result.metrics);
  return result_line(query, result);
}

std::string Session::run_insert_file(const std::string& path) {
  // Server-side file insert: resolve against the configured insert dir, not
  // wherever the server process was launched (same policy as the .mrq fix).
  std::filesystem::path resolved(path);
  if (resolved.is_relative() && !insert_dir_.empty()) {
    resolved = std::filesystem::path(insert_dir_) / resolved;
  }
  // Verbatim load (no normalisation): insert batches must already be in the
  // resident dataset's attribute space.
  const std::string name = resolved.string();
  return run_insert(has_suffix(name, ".mrsk") ? data::read_record_file(name)
                                              : data::read_csv_file(name));
}

std::string Session::run_insert(const data::PointSet& points) {
  const std::uint64_t version = engine_.insert_batch(points);
  ++metrics_.inserts;
  metrics_.points_inserted += points.size();
  metrics_.last_version = std::max(metrics_.last_version, version);
  return insert_line(points.size(), version);
}

}  // namespace mrsky::server
