#include "src/server/session.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/common/error.hpp"
#include "src/dataset/io.hpp"
#include "src/dataset/record_file.hpp"

namespace mrsky::server {

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Clears the token's deadline on every exit path out of a query — including
/// an InvalidArgument thrown mid-execute — so one request's budget can never
/// leak into the next request on the same session.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(common::CancellationToken& token) : token_(token) {}
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;
  ~DeadlineGuard() { token_.clear_deadline(); }

 private:
  common::CancellationToken& token_;
};

}  // namespace

void SessionMetrics::aggregate(const service::QueryMetrics& m) {
  ++queries;
  if (m.cache_hit) ++cache_hits;
  points_returned += m.result_points;
  wall_ns_total += m.wall_ns;
  wall_ns_max = std::max(wall_ns_max, m.wall_ns);
  last_version = std::max(last_version, m.dataset_version);
}

std::string SessionMetrics::to_json() const {
  return "{\"ok\":true,\"session\":" + std::to_string(id) +
         ",\"requests\":" + std::to_string(requests) +
         ",\"queries\":" + std::to_string(queries) +
         ",\"cache_hits\":" + std::to_string(cache_hits) +
         ",\"inserts\":" + std::to_string(inserts) +
         ",\"points_inserted\":" + std::to_string(points_inserted) +
         ",\"deletes\":" + std::to_string(deletes) +
         ",\"points_deleted\":" + std::to_string(points_deleted) +
         ",\"deltas_sent\":" + std::to_string(deltas_sent) +
         ",\"points_returned\":" + std::to_string(points_returned) +
         ",\"errors\":" + std::to_string(errors) +
         ",\"cancelled\":" + std::to_string(cancelled) +
         ",\"deadline_missed\":" + std::to_string(deadline_missed) +
         ",\"wall_ns_total\":" + std::to_string(wall_ns_total) +
         ",\"wall_ns_max\":" + std::to_string(wall_ns_max) +
         ",\"last_version\":" + std::to_string(last_version) + "}";
}

Session::Session(std::uint64_t id, service::QueryEngine& engine, std::string insert_dir)
    : Session(id, engine, SessionOptions{std::move(insert_dir), -1, 0}) {}

Session::Session(std::uint64_t id, service::QueryEngine& engine, SessionOptions options,
                 common::CancellationToken token)
    : engine_(engine), options_(std::move(options)), token_(std::move(token)) {
  if (!token_.armed()) token_ = common::CancellationToken::make();
  metrics_.id = id;
}

std::string Session::greeting() const {
  const service::EngineSnapshotPtr snap = engine_.snapshot();
  return hello_line(metrics_.id, snap->version, snap->dataset->size(), snap->dataset->dim());
}

std::string Session::handle_line(const std::string& line, bool& quit) {
  quit = false;
  try {
    const std::optional<RequestEnvelope> envelope = parse_request_line(
        line, engine_.snapshot()->dataset->dim(), options_.max_request_bytes);
    if (!envelope.has_value()) return "";  // blank / comment: no response
    ++metrics_.requests;
    const std::int64_t deadline_ms =
        envelope->deadline_ms >= 0 ? envelope->deadline_ms : options_.default_deadline_ms;
    return dispatch(envelope->request, deadline_ms, quit);
  } catch (const std::exception& e) {
    ++metrics_.requests;
    ++metrics_.errors;
    return error_line(e.what());
  }
}

std::string Session::dispatch(const Request& request, std::int64_t deadline_ms, bool& quit) {
  if (std::holds_alternative<QuitRequest>(request)) {
    quit = true;
    return "{\"ok\":true,\"bye\":" + std::to_string(metrics_.id) + "}";
  }
  if (std::holds_alternative<MetricsRequest>(request)) return metrics_.to_json();
  if (std::holds_alternative<StatsRequest>(request)) {
    const service::QueryEngine::Stats s = engine_.stats();
    const service::EngineSnapshotPtr snap = engine_.snapshot();
    return "{\"ok\":true,\"queries\":" + std::to_string(s.queries) +
           ",\"cache_hits\":" + std::to_string(s.cache_hits) +
           ",\"fits_computed\":" + std::to_string(s.fits_computed) +
           ",\"fit_reuses\":" + std::to_string(s.fit_reuses) +
           ",\"pipeline_runs\":" + std::to_string(s.pipeline_runs) +
           ",\"incremental_serves\":" + std::to_string(s.incremental_serves) +
           ",\"inserts\":" + std::to_string(s.inserts) +
           ",\"points_inserted\":" + std::to_string(s.points_inserted) +
           ",\"cache_evictions\":" + std::to_string(s.cache_evictions) +
           ",\"queries_cancelled\":" + std::to_string(s.queries_cancelled) +
           ",\"plans_computed\":" + std::to_string(s.plans_computed) +
           ",\"plan_reuses\":" + std::to_string(s.plan_reuses) +
           ",\"plan_predicted_ns\":" + std::to_string(s.plan_predicted_ns) +
           ",\"plan_actual_ns\":" + std::to_string(s.plan_actual_ns) +
           ",\"dataset_points\":" + std::to_string(snap->dataset->size()) +
           ",\"version\":" + std::to_string(snap->version) + "}";
  }
  if (const auto* insert = std::get_if<service::InsertCommand>(&request)) {
    return run_insert_file(insert->path);
  }
  if (const auto* inline_insert = std::get_if<InsertInline>(&request)) {
    return run_insert(inline_insert->points, inline_insert->ttl_ticks);
  }
  if (const auto* del = std::get_if<service::DeleteCommand>(&request)) {
    return run_delete(*del);
  }
  if (std::holds_alternative<SubscribeRequest>(request)) return run_subscribe();
  if (std::holds_alternative<UnsubscribeRequest>(request)) {
    if (sub_) {
      sub_->close();
      sub_.reset();
    }
    return unsubscribed_line();  // idempotent: unsubscribing twice is fine
  }
  return run_query(std::get<service::Query>(request), deadline_ms);
}

std::string Session::run_query(const service::Query& query, std::int64_t deadline_ms) {
  // One token serves the whole session: the deadline is (re-)armed around
  // each query, while a server-side cancel latched at any point stops this
  // and every later query on the session.
  const DeadlineGuard guard(token_);
  if (deadline_ms >= 0) token_.set_deadline(common::Deadline::after_ms(deadline_ms));
  try {
    const service::QueryResult result = engine_.execute(query, token_);
    metrics_.aggregate(result.metrics);
    return result_line(query, result);
  } catch (const QueryCancelled& e) {
    // Typed abort: accounted in its own counters, not as an error — the
    // request was well-formed, the server just stopped doing the work.
    if (e.deadline_expired()) {
      ++metrics_.deadline_missed;
    } else {
      ++metrics_.cancelled;
    }
    return cancelled_line(e.what(), e.deadline_expired());
  }
}

std::string Session::run_insert_file(const std::string& path) {
  // Server-side file insert: resolve against the configured insert dir, not
  // wherever the server process was launched (same policy as the .mrq fix).
  std::filesystem::path resolved(path);
  if (resolved.is_relative() && !options_.insert_dir.empty()) {
    resolved = std::filesystem::path(options_.insert_dir) / resolved;
  }
  // Verbatim load (no normalisation): insert batches must already be in the
  // resident dataset's attribute space.
  const std::string name = resolved.string();
  return run_insert(has_suffix(name, ".mrsk") ? data::read_record_file(name)
                                              : data::read_csv_file(name),
                    /*ttl_ticks=*/0);
}

std::string Session::run_insert(const data::PointSet& points, std::int64_t ttl_ticks) {
  std::uint64_t version = 0;
  if (ttl_ticks > 0) {
    // TTL rows must go through the streaming path: insert_batch has no way to
    // carry per-row expiries.
    service::MutationBatch batch;
    batch.inserts = points;
    batch.ttl_ticks.assign(points.size(), ttl_ticks);
    version = engine_.apply_batch(batch).snapshot->version;
  } else {
    version = engine_.insert_batch(points);
  }
  ++metrics_.inserts;
  metrics_.points_inserted += points.size();
  metrics_.last_version = std::max(metrics_.last_version, version);
  return insert_line(points.size(), version);
}

std::string Session::run_delete(const service::DeleteCommand& command) {
  service::MutationBatch batch;
  batch.deletes = command.ids;
  const service::ApplyResult r = engine_.apply_batch(batch);
  ++metrics_.deletes;
  metrics_.points_deleted += r.delta.deleted;
  metrics_.last_version = std::max(metrics_.last_version, r.delta.version);
  return delete_line(r.delta);
}

std::string Session::run_subscribe() {
  if (sub_ && !sub_->closed()) {
    return error_line("already subscribed (send `unsubscribe` first)");
  }
  sub_ = engine_.subscribe();
  metrics_.last_version = std::max(metrics_.last_version, sub_->base_version());
  return subscribed_line(sub_->base_version(), sub_->base_skyline());
}

}  // namespace mrsky::server
