#include "src/server/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace mrsky::server {

namespace {

/// Converts a JSON number to a size, rejecting negatives and fractions —
/// `"k":2.5` is a client bug, not a request for k=2.
std::size_t to_size(const common::JsonValue& v, const std::string& what) {
  MRSKY_REQUIRE(v.is_number(), what + " must be a number");
  const double d = v.as_number();
  MRSKY_REQUIRE(d >= 0.0 && d == std::floor(d) && d <= 1e15,
                what + " must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

/// Extracts `"deadline_ms"` (optional; non-negative integer) from a JSON
/// request object. -1 = not present.
std::int64_t parse_json_deadline(const common::JsonValue& doc) {
  const common::JsonValue* v = doc.find("deadline_ms");
  if (v == nullptr) return -1;
  MRSKY_REQUIRE(v->is_number(), "deadline_ms must be a number");
  const double d = v->as_number();
  MRSKY_REQUIRE(d >= 0.0 && d == std::floor(d) && d <= 1e12,
                "deadline_ms must be a non-negative integer of milliseconds");
  return static_cast<std::int64_t>(d);
}

Request parse_json_request(const common::JsonValue& doc, std::size_t dim) {
  MRSKY_REQUIRE(doc.is_object(), "request must be a JSON object");

  if (const common::JsonValue* command = doc.find("command"); command != nullptr) {
    const std::string& verb = command->as_string();
    if (verb == "metrics") return MetricsRequest{};
    if (verb == "stats") return StatsRequest{};
    if (verb == "quit") return QuitRequest{};
    if (verb == "subscribe") return SubscribeRequest{};
    if (verb == "unsubscribe") return UnsubscribeRequest{};
    throw InvalidArgument("unknown command '" + verb +
                          "' (expected metrics|stats|quit|subscribe|unsubscribe)");
  }

  if (const common::JsonValue* del = doc.find("delete"); del != nullptr) {
    MRSKY_REQUIRE(del->is_array(), "delete expects an array of point ids");
    service::DeleteCommand cmd;
    for (const common::JsonValue& id : del->as_array()) {
      cmd.ids.push_back(static_cast<data::PointId>(to_size(id, "point id")));
    }
    return cmd;
  }

  if (const common::JsonValue* insert = doc.find("insert"); insert != nullptr) {
    std::int64_t ttl = 0;
    if (const common::JsonValue* t = doc.find("ttl_ticks"); t != nullptr) {
      ttl = static_cast<std::int64_t>(to_size(*t, "ttl_ticks"));
      MRSKY_REQUIRE(insert->is_array(), "ttl_ticks applies to inline insert rows only");
    }
    if (insert->is_string()) return service::InsertCommand{insert->as_string()};
    MRSKY_REQUIRE(insert->is_array(),
                  "insert expects a file path or an array of point rows");
    InsertInline batch{data::PointSet(dim), ttl};
    std::vector<double> row;
    for (const common::JsonValue& item : insert->as_array()) {
      MRSKY_REQUIRE(item.is_array(), "insert rows must be arrays of numbers");
      row.clear();
      for (const common::JsonValue& coord : item.as_array()) {
        MRSKY_REQUIRE(coord.is_number(), "insert coordinates must be numbers");
        row.push_back(coord.as_number());
      }
      MRSKY_REQUIRE(row.size() == dim,
                    "insert row has " + std::to_string(row.size()) +
                        " coordinates, dataset has " + std::to_string(dim) + " attributes");
      batch.points.push_back(row);
    }
    return batch;
  }

  const common::JsonValue* query = doc.find("query");
  MRSKY_REQUIRE(query != nullptr,
                "request needs one of \"query\", \"insert\" or \"command\"");
  const std::string& kind = query->as_string();

  if (kind == "skyline") return service::Query{service::SkylineQuery{}};
  if (kind == "subspace") {
    const common::JsonValue* attrs = doc.find("attributes");
    MRSKY_REQUIRE(attrs != nullptr && attrs->is_array(),
                  "subspace needs an \"attributes\" array");
    service::SubspaceQuery q;
    for (const common::JsonValue& a : attrs->as_array()) {
      q.attributes.push_back(to_size(a, "attribute index"));
    }
    return service::Query{std::move(q)};
  }
  if (kind == "skyband") {
    const common::JsonValue* k = doc.find("k");
    MRSKY_REQUIRE(k != nullptr, "skyband needs \"k\"");
    return service::Query{service::KSkybandQuery{to_size(*k, "k")}};
  }
  if (kind == "representative") {
    const common::JsonValue* k = doc.find("k");
    MRSKY_REQUIRE(k != nullptr, "representative needs \"k\"");
    return service::Query{service::RepresentativeQuery{to_size(*k, "k")}};
  }
  if (kind == "topk") {
    const common::JsonValue* k = doc.find("k");
    const common::JsonValue* weights = doc.find("weights");
    MRSKY_REQUIRE(k != nullptr, "topk needs \"k\"");
    MRSKY_REQUIRE(weights != nullptr && weights->is_array(),
                  "topk needs a \"weights\" array");
    service::TopKWeightedQuery q;
    q.k = to_size(*k, "k");
    for (const common::JsonValue& w : weights->as_array()) {
      MRSKY_REQUIRE(w.is_number(), "weights must be numbers");
      q.weights.push_back(w.as_number());
    }
    return service::Query{std::move(q)};
  }
  throw InvalidArgument("unknown query kind '" + kind +
                        "' (expected skyline|subspace|skyband|representative|topk)");
}

/// Strips a trailing `deadline=<ms>` token off an `.mrq`-form request line.
/// Returns the deadline (-1 when absent) and erases the token from `body`.
std::int64_t strip_script_deadline(std::string& body) {
  const std::size_t last_end = body.find_last_not_of(" \t\r");
  if (last_end == std::string::npos) return -1;
  std::size_t tok_begin = body.find_last_of(" \t", last_end);
  tok_begin = tok_begin == std::string::npos ? 0 : tok_begin + 1;
  const std::string token = body.substr(tok_begin, last_end - tok_begin + 1);
  constexpr std::string_view kPrefix = "deadline=";
  if (token.compare(0, kPrefix.size(), kPrefix) != 0) return -1;
  const std::string digits = token.substr(kPrefix.size());
  MRSKY_REQUIRE(!digits.empty() && digits.find_first_not_of("0123456789") == std::string::npos &&
                    digits.size() <= 12,
                "deadline= expects a non-negative integer of milliseconds");
  body.erase(tok_begin);
  MRSKY_REQUIRE(body.find_first_not_of(" \t\r") != std::string::npos,
                "deadline= must follow a request, not stand alone");
  return std::stoll(digits);
}

}  // namespace

std::optional<RequestEnvelope> parse_request_line(const std::string& line, std::size_t dim,
                                                  std::size_t max_request_bytes) {
  // Size guard FIRST: a hostile request must be rejected before the JSON
  // parser materialises a DOM for it. The diagnostic names the byte offset
  // where the limit was crossed so a streaming client can find the cut.
  if (max_request_bytes > 0 && line.size() > max_request_bytes) {
    throw InvalidArgument("request is " + std::to_string(line.size()) +
                          " bytes, exceeding the " + std::to_string(max_request_bytes) +
                          "-byte limit at byte offset " + std::to_string(max_request_bytes));
  }
  std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return std::nullopt;  // blank line: no request
  if (line[first] == '#') return std::nullopt;          // comment: no request
  if (line[first] == '{') {
    const common::JsonValue doc = common::JsonValue::parse(line.substr(first));
    MRSKY_REQUIRE(doc.is_object(), "request must be a JSON object");
    return RequestEnvelope{parse_json_request(doc, dim), parse_json_deadline(doc)};
  }

  std::string body = line;
  const std::int64_t deadline_ms = strip_script_deadline(body);

  // Bare control verbs, then the .mrq script grammar for everything else.
  std::istringstream probe(body);
  std::string verb;
  probe >> verb;
  if (verb == "metrics") return RequestEnvelope{MetricsRequest{}, deadline_ms};
  if (verb == "stats") return RequestEnvelope{StatsRequest{}, deadline_ms};
  if (verb == "quit") return RequestEnvelope{QuitRequest{}, deadline_ms};
  if (verb == "subscribe") return RequestEnvelope{SubscribeRequest{}, deadline_ms};
  if (verb == "unsubscribe") return RequestEnvelope{UnsubscribeRequest{}, deadline_ms};

  std::istringstream one_line(body);
  std::vector<service::ScriptCommand> commands = service::parse_query_script(one_line);
  MRSKY_REQUIRE(commands.size() == 1, "expected exactly one command per line");
  if (auto* insert = std::get_if<service::InsertCommand>(&commands.front())) {
    return RequestEnvelope{std::move(*insert), deadline_ms};
  }
  if (auto* del = std::get_if<service::DeleteCommand>(&commands.front())) {
    return RequestEnvelope{std::move(*del), deadline_ms};
  }
  return RequestEnvelope{std::get<service::Query>(std::move(commands.front())), deadline_ms};
}

std::optional<Request> parse_request(const std::string& line, std::size_t dim) {
  std::optional<RequestEnvelope> envelope = parse_request_line(line, dim);
  if (!envelope.has_value()) return std::nullopt;
  return std::move(envelope->request);
}

std::string double_repr(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string error_line(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + common::json_escape(message) + "\"}";
}

std::string cancelled_line(const std::string& message, bool deadline_expired) {
  return "{\"ok\":false,\"error\":\"" + common::json_escape(message) +
         "\",\"cancelled\":true,\"reason\":\"" +
         (deadline_expired ? "deadline" : "cancelled") + "\"}";
}

std::string shed_line(std::size_t max_sessions, std::int64_t retry_after_ms) {
  return "{\"ok\":false,\"error\":\"server at capacity (" + std::to_string(max_sessions) +
         " sessions)\",\"shed\":true,\"retry_after_ms\":" + std::to_string(retry_after_ms) + "}";
}

std::string hello_line(std::uint64_t session_id, std::uint64_t version,
                       std::size_t dataset_size, std::size_t dim) {
  return "{\"ok\":true,\"server\":\"mrsky-skyline\",\"session\":" + std::to_string(session_id) +
         ",\"version\":" + std::to_string(version) +
         ",\"points\":" + std::to_string(dataset_size) + ",\"dim\":" + std::to_string(dim) + "}";
}

std::string result_line(const service::Query& query, const service::QueryResult& result) {
  const service::QueryMetrics& m = result.metrics;
  std::string out = "{\"ok\":true,\"kind\":\"" + service::query_kind(query) +
                    "\",\"version\":" + std::to_string(m.dataset_version);

  if (std::holds_alternative<service::TopKWeightedQuery>(query)) {
    out += ",\"ranking\":[";
    for (std::size_t i = 0; i < result.ranking.size(); ++i) {
      if (i > 0) out += ',';
      out += '[' + std::to_string(result.ranking[i].id) + ',' +
             double_repr(result.ranking[i].score) + ']';
    }
    out += ']';
  } else {
    out += ",\"points\":[";
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      if (i > 0) out += ',';
      out += '[' + std::to_string(result.points.id(i));
      for (double c : result.points.point(i)) out += ',' + double_repr(c);
      out += ']';
    }
    out += ']';
    if (std::holds_alternative<service::RepresentativeQuery>(query)) {
      out += ",\"coverage\":[";
      for (std::size_t i = 0; i < result.coverage.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(result.coverage[i]);
      }
      out += "],\"total_covered\":" + std::to_string(result.total_covered);
    }
  }

  out += ",\"metrics\":{\"cache_hit\":" + std::string(m.cache_hit ? "true" : "false") +
         ",\"fit_reused\":" + (m.fit_reused ? "true" : "false") +
         ",\"dominance_tests\":" + std::to_string(m.dominance_tests) +
         ",\"wall_ns\":" + std::to_string(m.wall_ns) +
         ",\"result_points\":" + std::to_string(m.result_points) + "}}";
  return out;
}

std::string insert_line(std::size_t points, std::uint64_t version) {
  return "{\"ok\":true,\"inserted\":" + std::to_string(points) +
         ",\"version\":" + std::to_string(version) + "}";
}

namespace {

/// Renders a PointSet as `[[id,c,...],...]`, the same shape result_line uses.
std::string points_array(const data::PointSet& points) {
  std::string out = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out += ',';
    out += '[' + std::to_string(points.id(i));
    for (double c : points.point(i)) out += ',' + double_repr(c);
    out += ']';
  }
  out += ']';
  return out;
}

std::string ids_array(const std::vector<data::PointId>& ids) {
  std::string out = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  out += ']';
  return out;
}

}  // namespace

std::string delete_line(const service::StreamDelta& delta) {
  return "{\"ok\":true,\"deleted\":" + std::to_string(delta.deleted) +
         ",\"missing\":" + std::to_string(delta.missing_deletes) +
         ",\"expired\":" + std::to_string(delta.expired) +
         ",\"version\":" + std::to_string(delta.version) + "}";
}

std::string subscribed_line(std::uint64_t base_version, const data::PointSet& base_skyline) {
  return "{\"ok\":true,\"event\":\"subscribed\",\"version\":" + std::to_string(base_version) +
         ",\"skyline\":" + points_array(base_skyline) + "}";
}

std::string unsubscribed_line() { return "{\"ok\":true,\"event\":\"unsubscribed\"}"; }

std::string delta_line(const service::StreamDelta& delta) {
  return "{\"ok\":true,\"event\":\"delta\",\"version\":" + std::to_string(delta.version) +
         ",\"tick\":" + std::to_string(delta.tick) +
         ",\"inserted\":" + std::to_string(delta.inserted) +
         ",\"deleted\":" + std::to_string(delta.deleted) +
         ",\"expired\":" + std::to_string(delta.expired) +
         ",\"missing\":" + std::to_string(delta.missing_deletes) +
         ",\"entered\":" + points_array(delta.entered) +
         ",\"left\":" + ids_array(delta.left) + "}";
}

}  // namespace mrsky::server
