#include "src/server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/sync.hpp"

namespace mrsky::server {

namespace {

/// Pulls the integer after `"retry_after_ms":` out of a shed rejection line.
/// 0 when absent — the client then falls back to its own base delay.
std::int64_t parse_retry_after_ms(const std::string& line) {
  static const std::string kKey = "\"retry_after_ms\":";
  const std::size_t pos = line.find(kKey);
  if (pos == std::string::npos) return 0;
  std::int64_t value = 0;
  std::size_t i = pos + kKey.size();
  while (i < line.size() && line[i] >= '0' && line[i] <= '9' && value < 1'000'000'000) {
    value = value * 10 + (line[i] - '0');
    ++i;
  }
  return value;
}

}  // namespace

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      recv_timeout_ms_(other.recv_timeout_ms_),
      timed_out_(other.timed_out_) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    recv_timeout_ms_ = other.recv_timeout_ms_;
    timed_out_ = other.timed_out_;
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::connect(const std::string& host, std::uint16_t port) {
  MRSKY_REQUIRE(fd_ < 0, "client already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MRSKY_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    MRSKY_FAIL("invalid IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = "connect " + host + ":" + std::to_string(port) + ": " +
                            std::strerror(errno);
    ::close(fd);
    MRSKY_FAIL(msg);
  }
  fd_ = fd;
  buffer_.clear();
  timed_out_ = false;
}

LineClient::ConnectResult LineClient::connect_with_backoff(const std::string& host,
                                                           std::uint16_t port,
                                                           const BackoffOptions& options) {
  MRSKY_REQUIRE(options.max_attempts >= 1, "max_attempts must be >= 1");
  MRSKY_REQUIRE(options.base_delay_ms >= 1, "base_delay_ms must be >= 1");
  ConnectResult result;
  common::Rng rng(options.jitter_seed);
  for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    ++result.attempts;
    std::int64_t hint = 0;
    bool reached = false;
    try {
      connect(host, port);
      reached = true;
    } catch (const std::exception&) {
      // connection refused / transient network failure: plain backoff below
    }
    if (reached) {
      const std::optional<std::string> first = recv_line();
      if (first.has_value() && first->find("\"shed\":true") == std::string::npos) {
        result.connected = true;
        result.greeting = *first;
        return result;
      }
      if (first.has_value()) {
        // Admission control turned us away: honour its retry-after hint.
        ++result.sheds;
        hint = parse_retry_after_ms(*first);
      }
      close();
    }
    if (attempt + 1 == options.max_attempts) break;
    // Exponential backoff from max(hint, base), +[0, 50%) jitter so a fleet
    // of shed clients does not return in lockstep.
    const std::size_t shift = std::min<std::size_t>(attempt, 20);
    std::int64_t delay = std::max(hint, options.base_delay_ms) << shift;
    delay = std::min(delay, options.max_delay_ms);
    delay += static_cast<std::int64_t>(rng.uniform() * 0.5 * static_cast<double>(delay));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return result;
}

bool LineClient::send_line(const std::string& line) { return send_raw(line + '\n'); }

bool LineClient::send_raw(const std::string& bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineClient::recv_line() {
  timed_out_ = false;
  if (fd_ < 0) return std::nullopt;
  // The timeout budget covers the WHOLE line, not each chunk — a server
  // dribbling a response slower than the budget still times out.
  const common::Deadline deadline = recv_timeout_ms_ < 0
                                        ? common::Deadline{}
                                        : common::Deadline::after_ms(recv_timeout_ms_);
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (deadline.engaged()) {
      const std::int64_t remaining = deadline.remaining_ms();
      if (remaining == 0) {
        timed_out_ = true;
        return std::nullopt;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {
        timed_out_ = true;
        return std::nullopt;
      }
      if (ready < 0) return std::nullopt;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> LineClient::request(const std::string& line) {
  if (!send_line(line)) return std::nullopt;
  return recv_line();
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  timed_out_ = false;
}

}  // namespace mrsky::server
