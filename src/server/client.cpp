#include "src/server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/error.hpp"

namespace mrsky::server {

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::connect(const std::string& host, std::uint16_t port) {
  MRSKY_REQUIRE(fd_ < 0, "client already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MRSKY_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    MRSKY_FAIL("invalid IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string msg = "connect " + host + ":" + std::to_string(port) + ": " +
                            std::strerror(errno);
    ::close(fd);
    MRSKY_FAIL(msg);
  }
  fd_ = fd;
  buffer_.clear();
}

bool LineClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineClient::recv_line() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> LineClient::request(const std::string& line) {
  if (!send_line(line)) return std::nullopt;
  return recv_line();
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace mrsky::server
