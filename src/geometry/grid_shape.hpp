// Balanced mixed-radix grid shapes.
//
// Both MR-Grid (cells in Cartesian space) and MR-Angle (cells in the angular
// cube) must split a k-dimensional box into exactly P cells, for arbitrary P
// (the paper sets P = 2 × servers, so P is rarely a perfect k-th power).
// `balanced_grid_shape` factorises P into per-dimension split counts whose
// product is exactly P and whose sizes are as equal as possible, so cells
// stay near-cubical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrsky::geo {

/// Splits `target` into `dims` factors (product == target, each >= 1),
/// as balanced as a prime factorisation of `target` permits. Factors are
/// returned largest-first. Requires target >= 1 and dims >= 1.
[[nodiscard]] std::vector<std::size_t> balanced_grid_shape(std::size_t target, std::size_t dims);

/// Prime factorisation by trial division, ascending, with multiplicity.
[[nodiscard]] std::vector<std::uint64_t> prime_factors(std::uint64_t n);

/// Row-major linearisation of a mixed-radix index: cell[i] < shape[i].
[[nodiscard]] std::size_t linear_index(const std::vector<std::size_t>& cell,
                                       const std::vector<std::size_t>& shape);

/// Inverse of linear_index.
[[nodiscard]] std::vector<std::size_t> unlinear_index(std::size_t index,
                                                      const std::vector<std::size_t>& shape);

}  // namespace mrsky::geo
