#include "src/geometry/grid_shape.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace mrsky::geo {

std::vector<std::uint64_t> prime_factors(std::uint64_t n) {
  MRSKY_REQUIRE(n >= 1, "prime_factors of zero");
  std::vector<std::uint64_t> factors;
  for (std::uint64_t p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

std::vector<std::size_t> balanced_grid_shape(std::size_t target, std::size_t dims) {
  MRSKY_REQUIRE(target >= 1, "grid shape target must be >= 1");
  MRSKY_REQUIRE(dims >= 1, "grid shape needs at least one dimension");
  std::vector<std::size_t> shape(dims, 1);
  // Assign each prime factor (largest first) to the currently smallest axis;
  // this greedy keeps the product balanced.
  auto factors = prime_factors(target);
  std::sort(factors.rbegin(), factors.rend());
  for (std::uint64_t f : factors) {
    auto smallest = std::min_element(shape.begin(), shape.end());
    *smallest *= static_cast<std::size_t>(f);
  }
  std::sort(shape.rbegin(), shape.rend());
  return shape;
}

std::size_t linear_index(const std::vector<std::size_t>& cell,
                         const std::vector<std::size_t>& shape) {
  MRSKY_REQUIRE(cell.size() == shape.size(), "cell/shape rank mismatch");
  std::size_t index = 0;
  for (std::size_t i = 0; i < cell.size(); ++i) {
    MRSKY_ASSERT(cell[i] < shape[i], "cell index out of range");
    index = index * shape[i] + cell[i];
  }
  return index;
}

std::vector<std::size_t> unlinear_index(std::size_t index, const std::vector<std::size_t>& shape) {
  std::vector<std::size_t> cell(shape.size());
  for (std::size_t i = shape.size(); i-- > 0;) {
    cell[i] = index % shape[i];
    index /= shape[i];
  }
  MRSKY_REQUIRE(index == 0, "linear index exceeds shape volume");
  return cell;
}

}  // namespace mrsky::geo
