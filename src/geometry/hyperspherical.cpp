#include "src/geometry/hyperspherical.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace mrsky::geo {

namespace {

void check_input(std::span<const double> v) {
  MRSKY_REQUIRE(!v.empty(), "hyperspherical transform needs at least one coordinate");
  for (double x : v) {
    MRSKY_REQUIRE(x >= 0.0, "hyperspherical transform requires non-negative coordinates");
  }
}

}  // namespace

void angles_of(std::span<const double> v, std::vector<double>& phi_out) {
  check_input(v);
  const std::size_t n = v.size();
  phi_out.resize(n - 1);
  // Suffix sums of squares computed back-to-front: tail_k = vn² + ... + v(k+1)².
  double tail = 0.0;
  for (std::size_t k = n; k-- > 1;) {
    tail += v[k] * v[k];
    // atan2 handles vk == 0 (angle π/2) and tail == 0 (angle 0); the all-zero
    // prefix case atan2(0, 0) yields 0, a stable convention for duplicates
    // of the origin.
    phi_out[k - 1] = std::atan2(std::sqrt(tail), v[k - 1]);
  }
}

HypersphericalCoords to_hyperspherical(std::span<const double> v) {
  check_input(v);
  HypersphericalCoords out;
  double sum_sq = 0.0;
  for (double x : v) sum_sq += x * x;
  out.r = std::sqrt(sum_sq);
  angles_of(v, out.phi);
  return out;
}

std::vector<double> to_cartesian(const HypersphericalCoords& coords) {
  const std::size_t n = coords.phi.size() + 1;
  std::vector<double> v(n);
  // v1 = r cos φ1; vk = r sin φ1 ... sin φ(k-1) cos φk; vn = r sin φ1 ... sin φ(n-1).
  double sines = coords.r;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    v[k] = sines * std::cos(coords.phi[k]);
    sines *= std::sin(coords.phi[k]);
  }
  v[n - 1] = sines;
  return v;
}

}  // namespace mrsky::geo
