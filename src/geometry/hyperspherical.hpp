// Hyperspherical coordinate transform — paper Eq. (1) and (2).
//
// For a non-negative Cartesian vector v = (v1, ..., vn):
//   r        = sqrt(v1² + ... + vn²)
//   tan(φk)  = sqrt(vn² + ... + v(k+1)²) / vk        for k = 1 .. n-1
// so each angle lies in [0, π/2] when all coordinates are non-negative
// (the QoS data space is the positive orthant). MR-Angle partitions the
// (n−1)-dimensional angular cube [0, π/2]^(n−1); the radial coordinate r is
// deliberately ignored, which is exactly why each angular sector spans the
// full quality range from near-origin (good) to far (poor) services.
#pragma once

#include <span>
#include <vector>

namespace mrsky::geo {

struct HypersphericalCoords {
  double r = 0.0;
  std::vector<double> phi;  ///< n-1 angles, each in [0, π/2] for v >= 0
};

/// Forward transform (Eq. 1). Requires a non-empty vector with non-negative
/// coordinates (throws otherwise). The all-zero vector maps to r=0, φ=0.
[[nodiscard]] HypersphericalCoords to_hyperspherical(std::span<const double> v);

/// Angles only, written into `phi_out` (resized to v.size()-1). Avoids
/// allocation in the per-point Map loop.
void angles_of(std::span<const double> v, std::vector<double>& phi_out);

/// Inverse transform; reconstructs the Cartesian vector of dimension
/// coords.phi.size() + 1. Used by tests to prove round-tripping.
[[nodiscard]] std::vector<double> to_cartesian(const HypersphericalCoords& coords);

}  // namespace mrsky::geo
