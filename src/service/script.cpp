#include "src/service/script.hpp"

#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <sstream>

#include "src/common/error.hpp"

namespace mrsky::service {

namespace {

/// Splits a comma-separated field. "0,2,3" -> {"0","2","3"}; empty items
/// (",," or trailing commas) are preserved so they can be reported as errors.
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> items;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      items.push_back(s.substr(pos));
      return items;
    }
    items.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

bool parse_size(const std::string& s, std::size_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::istringstream is(s);
  is.imbue(std::locale::classic());
  is >> out;
  return !is.fail() && is.eof();
}

}  // namespace

std::vector<ScriptCommand> parse_query_script(std::istream& in, const std::string& base_dir) {
  std::vector<ScriptCommand> commands;
  std::vector<std::string> errors;
  std::string line;
  std::size_t line_no = 0;

  auto bad = [&](const std::string& what) {
    errors.push_back("line " + std::to_string(line_no) + ": " + what);
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb) || verb.front() == '#') continue;

    std::vector<std::string> args;
    for (std::string a; fields >> a;) args.push_back(a);

    if (verb == "skyline") {
      if (!args.empty()) {
        bad("skyline takes no arguments");
        continue;
      }
      commands.emplace_back(Query{SkylineQuery{}});
    } else if (verb == "subspace") {
      if (args.size() != 1) {
        bad("subspace expects one attribute list, e.g. `subspace 0,2`");
        continue;
      }
      SubspaceQuery q;
      bool ok = true;
      for (const std::string& item : split_commas(args[0])) {
        std::size_t attr = 0;
        if (!parse_size(item, attr)) {
          bad("subspace: bad attribute index '" + item + "'");
          ok = false;
          break;
        }
        q.attributes.push_back(attr);
      }
      if (ok) commands.emplace_back(Query{std::move(q)});
    } else if (verb == "skyband") {
      std::size_t k = 0;
      if (args.size() != 1 || !parse_size(args[0], k)) {
        bad("skyband expects one integer k, e.g. `skyband 3`");
        continue;
      }
      commands.emplace_back(Query{KSkybandQuery{k}});
    } else if (verb == "representative") {
      std::size_t k = 0;
      if (args.size() != 1 || !parse_size(args[0], k)) {
        bad("representative expects one integer k, e.g. `representative 5`");
        continue;
      }
      commands.emplace_back(Query{RepresentativeQuery{k}});
    } else if (verb == "topk") {
      std::size_t k = 0;
      if (args.size() != 2 || !parse_size(args[0], k)) {
        bad("topk expects `topk <k> <w,w,...>`, e.g. `topk 10 0.5,0.5`");
        continue;
      }
      TopKWeightedQuery q;
      q.k = k;
      bool ok = true;
      for (const std::string& item : split_commas(args[1])) {
        double w = 0.0;
        if (!parse_double(item, w)) {
          bad("topk: bad weight '" + item + "'");
          ok = false;
          break;
        }
        if (!std::isfinite(w)) {
          // `inf`/`nan` parse as doubles but can never rank a point
          // (inf * 0 = nan poisons every score): refuse them here, with the
          // line number, instead of letting the engine reject them later.
          bad("topk: non-finite weight '" + item + "'");
          ok = false;
          break;
        }
        q.weights.push_back(w);
      }
      if (ok) commands.emplace_back(Query{std::move(q)});
    } else if (verb == "insert") {
      if (args.size() != 1) {
        bad("insert expects one file path, e.g. `insert extra.csv`");
        continue;
      }
      // Resolve relative to the script, not the process CWD: a script that
      // says `insert extra.csv` means the file next to it, wherever the
      // session was launched from.
      std::filesystem::path path(args[0]);
      if (path.is_relative() && !base_dir.empty()) {
        path = std::filesystem::path(base_dir) / path;
      }
      commands.emplace_back(InsertCommand{path.string()});
    } else if (verb == "delete") {
      if (args.size() != 1) {
        bad("delete expects one id list, e.g. `delete 3,17,42`");
        continue;
      }
      DeleteCommand cmd;
      bool ok = true;
      for (const std::string& item : split_commas(args[0])) {
        std::size_t id = 0;
        if (!parse_size(item, id)) {
          bad("delete: bad point id '" + item + "'");
          ok = false;
          break;
        }
        cmd.ids.push_back(static_cast<data::PointId>(id));
      }
      if (ok) commands.emplace_back(std::move(cmd));
    } else {
      bad("unknown command '" + verb +
          "' (expected skyline|subspace|skyband|representative|topk|insert|delete)");
    }
  }

  if (!errors.empty()) {
    std::string message = "query script has " + std::to_string(errors.size()) +
                          (errors.size() == 1 ? " problem:" : " problems:");
    for (const std::string& e : errors) message += "\n  - " + e;
    throw InvalidArgument(message);
  }
  return commands;
}

std::vector<ScriptCommand> parse_query_script_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) MRSKY_FAIL("cannot open query script " + path);
  return parse_query_script(file, std::filesystem::path(path).parent_path().string());
}

}  // namespace mrsky::service
