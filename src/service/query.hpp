// The QueryEngine's typed query surface (ISSUE 5).
//
// The paper motivates MapReduce skyline computation with a *live* service
// registry (§II): many queries and updates against one resident dataset, not
// a single batch run. This header defines the query algebra that registry
// serves — the plain skyline plus the service-selection generalisations from
// skyline/extensions.hpp — as a closed std::variant, so the engine can
// dispatch, canonicalise and cache every request through one type.
//
// Every query has a *canonical signature*: a byte-exact string encoding of
// its parameters (doubles are rendered as hex bit patterns, never decimal),
// used as the result-cache key together with the engine's dataset version.
// Two queries with the same signature are guaranteed to produce bitwise
// identical results on the same dataset version.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/dataset/point_set.hpp"
#include "src/skyline/extensions.hpp"

namespace mrsky::service {

/// The full skyline of the resident dataset (paper Algorithm 1).
struct SkylineQuery {};

/// Skyline over a projection onto `attributes` (data::project semantics:
/// indices must be in range; order and duplicates are respected).
struct SubspaceQuery {
  std::vector<std::size_t> attributes;
};

/// Points dominated by fewer than `k` others (k >= 1; 1 = the skyline).
struct KSkybandQuery {
  std::size_t k = 2;
};

/// Greedy max-coverage representative skyline of at most `k` points.
struct RepresentativeQuery {
  std::size_t k = 10;
};

/// Skyline members ranked by the weighted attribute sum, best `k` returned.
/// `weights` must be non-negative, one per attribute.
struct TopKWeightedQuery {
  std::vector<double> weights;
  std::size_t k = 10;
};

using Query = std::variant<SkylineQuery, SubspaceQuery, KSkybandQuery, RepresentativeQuery,
                           TopKWeightedQuery>;

/// Short kind tag: "skyline", "subspace", "k_skyband", "representative",
/// "top_k_weighted". Used in traces, metrics JSON and tables.
[[nodiscard]] std::string query_kind(const Query& query);

/// Canonical cache-key encoding of the query parameters (excluding the
/// dataset version, which the engine appends). Deterministic and byte-exact:
/// doubles are encoded as 64-bit hex patterns.
[[nodiscard]] std::string query_signature(const Query& query);

/// Validates `query` against a `dim`-attribute dataset and returns ALL
/// violations (empty = valid) — the same all-errors contract as
/// MRSkylineConfig::validate().
[[nodiscard]] std::vector<std::string> validate_query(const Query& query, std::size_t dim);

/// What one execute() call did — cache behaviour, fit reuse and cost.
struct QueryMetrics {
  bool cache_hit = false;    ///< served from the LRU result cache
  bool fit_reused = false;   ///< partition fit came from the fit memo (MR paths)
  /// Dominance tests charged by the skyline kernels. On the MapReduce paths
  /// (skyline/subspace) this is the pipeline's total work units, which also
  /// include the O(d)-per-point partition-assignment arithmetic.
  std::uint64_t dominance_tests = 0;
  std::int64_t wall_ns = 0;           ///< measured wall time of this execute()
  std::uint64_t dataset_version = 0;  ///< version the result was computed against
  std::size_t result_points = 0;      ///< points (or ranking entries) returned

  // scheme=auto only (engine configured with the adaptive planner); all
  // defaults otherwise. `plan_scheme` is the resolved scheme's name.
  bool planned = false;       ///< this query ran under an adaptive plan
  bool plan_reused = false;   ///< plan came from the per-version plan memo
  std::string plan_scheme;
  std::size_t plan_partitions = 0;
  std::int64_t plan_predicted_ns = 0;  ///< chosen plan's predicted pipeline wall
  std::int64_t plan_planning_ns = 0;   ///< planning cost (0 on memo reuse)
};

/// One query's payload + metrics. Which fields are populated depends on the
/// query kind; unused ones stay empty.
struct QueryResult {
  /// skyline / subspace / k_skyband: the result points in canonical
  /// (ascending-id) order. representative: the picks in greedy pick order
  /// (aligned with `coverage`).
  data::PointSet points{1};
  std::vector<std::size_t> coverage;      ///< representative only
  std::size_t total_covered = 0;          ///< representative only
  std::vector<skyline::ScoredPoint> ranking;  ///< top_k_weighted only
  QueryMetrics metrics;
};

}  // namespace mrsky::service
