// Resident skyline query engine (ISSUE 5 tentpole).
//
// The paper's serving scenario (§II) is a *live* UDDI registry: many skyline
// queries and service insertions against one resident dataset. Re-running
// run_mr_skyline per request re-fits the partitioner and re-spawns engine
// state every time; this class is the coordinator that amortises all of that
// across queries, the way Zhang & Zhang reuse coordinator-side state across
// rounds and SATO fits a partition plan once and serves many queries from it:
//
//  * the dataset is loaded once and owned by the engine;
//  * one persistent common::ThreadPool backs every kThreads pipeline run;
//  * partition fits are memoised per (scheme, partitions, fit-sample[,
//    attribute-subset]) key and reused until an insert changes the data;
//  * results are kept in an LRU cache keyed by the query's canonical
//    signature plus the dataset version, so a repeated query is a lookup;
//  * insert_batch() folds new points into the cached full skyline through
//    skyline::IncrementalSkyline (no pipeline re-run) and bumps the version,
//    which invalidates exactly the derived (subspace / k-skyband /
//    representative / top-k) entries.
//
// Result canonicalisation: skyline, subspace and k-skyband results are
// returned in ascending-id order, so the engine's answer for a given
// (query, dataset version) is bitwise reproducible regardless of which path
// (pipeline, incremental fold, cache) produced it. Representative picks stay
// in greedy pick order (aligned with their coverage counts) and rankings in
// score order — both deterministic.
//
// Concurrency contract: the engine itself is not thread-safe — serialise
// execute()/insert_batch() calls. Inside one execute() the MapReduce pipeline
// parallelises on the engine's pool when the config says kThreads; results
// are bitwise identical to kSequential (the engine inherits the job engine's
// determinism guarantee).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/common/trace.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/point_set.hpp"
#include "src/partition/partitioner.hpp"
#include "src/service/query.hpp"
#include "src/skyline/incremental.hpp"

namespace mrsky::service {

struct QueryEngineOptions {
  /// Pipeline configuration for the MapReduce paths (skyline / subspace).
  /// Validated with MRSkylineConfig::validate() at construction — every
  /// problem is reported in one throw. `prepared_partitioner` must be null
  /// (the engine owns fit preparation); under kThreads with no caller pool
  /// the engine creates one persistent pool and reuses it for every query.
  core::MRSkylineConfig config;

  /// Result-cache entries kept (LRU eviction). 0 disables result caching —
  /// fits and the incremental full skyline are still reused.
  std::size_t cache_capacity = 64;

  /// Optional span recorder: the engine records "service"-category spans
  /// (query, prepared-fit, insert-batch) and threads the recorder through the
  /// pipeline's RunOptions, so one file holds the service and engine levels.
  /// Must outlive the engine. Null = tracing off at zero cost.
  common::TraceRecorder* trace = nullptr;
};

class QueryEngine {
 public:
  /// Loads `dataset` (non-empty; minimisation orientation, non-negative
  /// coordinates for the angular schemes — run_mr_skyline's contract).
  /// Throws mrsky::InvalidArgument listing every config problem at once.
  explicit QueryEngine(data::PointSet dataset, QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Serves one query. Throws mrsky::InvalidArgument (all problems in one
  /// message) if the query is invalid for the resident dataset.
  [[nodiscard]] QueryResult execute(const Query& query);

  /// Serves queries in order; element i is execute(queries[i]). Later queries
  /// see cache entries populated by earlier ones.
  [[nodiscard]] std::vector<QueryResult> execute_batch(std::span<const Query> queries);

  /// Appends `points` to the resident dataset under fresh ids (the incoming
  /// ids are ignored; ids continue from max-existing + 1, the §II "new
  /// service added into UDDI" path). Bumps the dataset version — derived
  /// cache entries become unreachable — and, when a full skyline is resident,
  /// folds the new points into it incrementally and refreshes its cache
  /// entry instead of discarding it. An empty batch is a no-op.
  void insert_batch(const data::PointSet& points);

  [[nodiscard]] const data::PointSet& dataset() const noexcept { return dataset_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Lifetime counters (monotone; for benches and tests).
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t fits_computed = 0;
    std::uint64_t fit_reuses = 0;
    std::uint64_t pipeline_runs = 0;
    std::uint64_t incremental_serves = 0;  ///< skyline served from the fold
    std::uint64_t inserts = 0;
    std::uint64_t points_inserted = 0;
    std::uint64_t cache_evictions = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Current cache / fit-memo occupancy (for tests).
  [[nodiscard]] std::size_t cache_entries() const noexcept { return cache_index_.size(); }
  [[nodiscard]] std::size_t fit_entries() const noexcept { return fits_.size(); }

 private:
  struct CacheEntry {
    std::string key;
    QueryResult payload;  ///< metrics hold the original compute cost
  };

  /// Cache key for `query` at the current dataset version.
  [[nodiscard]] std::string cache_key(const Query& query) const;

  /// Looks up / fits-and-memoises the partitioner for `ps` under `fit_key`.
  const part::Partitioner& prepared_fit(const data::PointSet& ps, const std::string& fit_key,
                                        bool& reused);

  /// Runs the MapReduce pipeline over `ps` with a prepared fit; returns the
  /// canonical (id-sorted) skyline and charges work into `result`.
  data::PointSet pipeline_skyline(const data::PointSet& ps, const std::string& fit_key,
                                  QueryResult& result);

  /// Computes a fresh payload for `query` (cache miss path).
  [[nodiscard]] QueryResult compute(const Query& query);

  void cache_store(const std::string& key, const QueryResult& payload);
  [[nodiscard]] const QueryResult* cache_find(const std::string& key);

  data::PointSet dataset_;
  QueryEngineOptions options_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< owned persistent pool (kThreads)
  std::uint64_t version_ = 0;
  data::PointId next_id_ = 0;

  /// The resident full skyline, maintained across insert_batch() calls.
  std::optional<skyline::IncrementalSkyline> full_skyline_;
  std::uint64_t full_skyline_version_ = 0;

  std::map<std::string, part::PartitionerPtr> fits_;  ///< fit memo (cleared on insert)

  std::list<CacheEntry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_index_;

  Stats stats_;
};

}  // namespace mrsky::service
