// Resident skyline query engine (ISSUE 5 tentpole, made concurrency-safe in
// ISSUE 6).
//
// The paper's serving scenario (§II) is a *live* UDDI registry: many skyline
// queries and service insertions against one resident dataset. Re-running
// run_mr_skyline per request re-fits the partitioner and re-spawns engine
// state every time; this class is the coordinator that amortises all of that
// across queries, the way Zhang & Zhang reuse coordinator-side state across
// rounds and SATO fits a partition plan once and serves many queries from it:
//
//  * the dataset is loaded once and owned by the engine;
//  * one persistent common::ThreadPool backs every kThreads pipeline run;
//  * partition fits are memoised per (version, scheme, partitions,
//    fit-sample[, attribute-subset]) key and reused until an insert changes
//    the data;
//  * under scheme=auto, the adaptive plan (core::AdaptivePlanner) is memoised
//    per dataset version the same way — planned once, reused by every query
//    at that version, invalidated by insert_batch;
//  * results are kept in an LRU cache keyed by the query's canonical
//    signature plus the dataset version, so a repeated query is a lookup;
//  * insert_batch() folds new points into the resident full skyline through
//    skyline::IncrementalSkyline (no pipeline re-run) and publishes a new
//    snapshot, which invalidates exactly the derived (subspace / k-skyband /
//    representative / top-k) entries.
//
// Result canonicalisation: skyline, subspace and k-skyband results are
// returned in ascending-id order, so the engine's answer for a given
// (query, dataset version) is bitwise reproducible regardless of which path
// (pipeline, incremental fold, cache) produced it. Representative picks stay
// in greedy pick order (aligned with their coverage counts) and rankings in
// score order — both deterministic.
//
// Concurrency contract (MVCC snapshot reads): execute(), execute_batch(),
// insert_batch() and every accessor may be called from any number of threads
// concurrently. Each execute() pins one immutable EngineSnapshot — the
// (dataset, full skyline, version) triple — for its whole run, so a reader is
// never affected by a concurrent insert; its answer is bitwise-exact for the
// version it reports in QueryMetrics::dataset_version. insert_batch() builds
// the *next* snapshot on the side (writers serialise on one mutex) and
// publishes it with a pointer swap; readers never block on a writer beyond
// that swap. Partition fits are held by shared_ptr so an in-flight pipeline
// keeps its fit alive across an insert that retires it, and the result
// cache's recency list is guarded by its own small mutex so cache hits stay
// read-only with respect to engine state. Within one execute() the MapReduce
// pipeline parallelises on the engine's pool when the config says kThreads;
// results are bitwise identical to kSequential (the engine inherits the job
// engine's determinism guarantee).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/sync.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/trace.hpp"
#include "src/core/adaptive_planner.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/point_set.hpp"
#include "src/partition/partitioner.hpp"
#include "src/service/query.hpp"
#include "src/service/stream.hpp"
#include "src/skyline/incremental.hpp"
#include "src/skyline/maintained.hpp"

namespace mrsky::service {

struct QueryEngineOptions {
  /// Pipeline configuration for the MapReduce paths (skyline / subspace).
  /// Validated with MRSkylineConfig::validate() at construction — every
  /// problem is reported in one throw. `prepared_partitioner` must be null
  /// (the engine owns fit preparation); under kThreads with no caller pool
  /// the engine creates one persistent pool and reuses it for every query.
  core::MRSkylineConfig config;

  /// Result-cache entries kept (LRU eviction). 0 disables result caching —
  /// fits and the incremental full skyline are still reused.
  std::size_t cache_capacity = 64;

  /// Optional span recorder: the engine records "service"-category spans
  /// (query, prepared-fit, insert-batch) and threads the recorder through the
  /// pipeline's RunOptions, so one file holds the service and engine levels.
  /// Must outlive the engine. Null = tracing off at zero cost.
  common::TraceRecorder* trace = nullptr;

  /// Streaming count window: when > 0, the live set is capped at this many
  /// points — each apply_batch evicts the oldest surviving insertions beyond
  /// the cap (counted as expiries in the delta). 0 = unbounded.
  std::size_t window_capacity = 0;

  /// Streaming time window: default TTL, in logical ticks, for points
  /// inserted without an explicit per-point TTL. 0 = no default expiry.
  /// Either window option puts insert_batch() on the apply_batch path from
  /// the first call, so plain inserts respect the window too.
  std::uint64_t window_ticks = 0;

  /// Undelivered deltas buffered per subscription before the oldest is
  /// dropped and the subscription latches lagged().
  std::size_t subscription_queue_capacity = 1024;
};

/// One immutable, internally consistent view of the engine's data. Readers
/// pin a snapshot for the duration of a query; an insert publishes a new one
/// and never mutates a published snapshot, so everything reachable from here
/// is safe to read without locks for as long as the shared_ptr is held.
struct EngineSnapshot {
  std::uint64_t version = 0;
  std::shared_ptr<const data::PointSet> dataset;
  /// Canonical (ascending-id) full skyline at `version` when known — either
  /// computed by a pipeline run at this version or maintained by the
  /// insert-time incremental fold. Null until the first skyline query.
  std::shared_ptr<const data::PointSet> full_skyline;
};
using EngineSnapshotPtr = std::shared_ptr<const EngineSnapshot>;

/// What one apply_batch published: the new snapshot (pinned, so the caller
/// can read the exact dataset/skyline this batch produced regardless of
/// later writers) plus the skyline delta against the previous version.
struct ApplyResult {
  EngineSnapshotPtr snapshot;
  StreamDelta delta;
};

class QueryEngine {
 public:
  /// Loads `dataset` (non-empty; minimisation orientation, non-negative
  /// coordinates for the angular schemes — run_mr_skyline's contract).
  /// Throws mrsky::InvalidArgument listing every config problem at once.
  explicit QueryEngine(data::PointSet dataset, QueryEngineOptions options = {});

  /// Loads the dataset from any DatasetSource (block store, staged CSV,
  /// in-memory). Serving is resident by design — queries, inserts and the
  /// incremental fold all need random access — so the source is materialised
  /// once here; out-of-core execution is the batch pipeline's job
  /// (run_mr_skyline's DatasetSource overload), not the engine's
  /// (DESIGN.md decision 16).
  explicit QueryEngine(const data::DatasetSource& source, QueryEngineOptions options = {});

  /// Closes every live subscription (backlogs stay drainable by holders).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Serves one query against the snapshot current at entry. Thread-safe.
  /// Throws mrsky::InvalidArgument (all problems in one message) if the query
  /// is invalid for the resident dataset.
  [[nodiscard]] QueryResult execute(const Query& query);

  /// Like execute(query), under cooperative cancellation: `cancel` is polled
  /// at admission (before the cache lookup, so an already-expired deadline
  /// deterministically yields the typed error), threaded into the MapReduce
  /// pipeline's RunOptions, and re-checked before any result is published.
  /// Throws mrsky::QueryCancelled when the token signals — and guarantees a
  /// cancelled query NEVER stores a cache entry or publishes a full-skyline
  /// snapshot (DESIGN.md decision 13): partial pipeline state unwinds, shared
  /// engine state is untouched, and Stats::queries_cancelled is incremented.
  /// An inert (default) token makes this identical to execute(query).
  [[nodiscard]] QueryResult execute(const Query& query, const common::CancellationToken& cancel);

  /// Serves queries in order; element i is execute(queries[i]). Later queries
  /// see cache entries populated by earlier ones.
  [[nodiscard]] std::vector<QueryResult> execute_batch(std::span<const Query> queries);

  /// Appends `points` to the resident dataset under fresh ids (the incoming
  /// ids are ignored; ids continue from max-existing + 1, the §II "new
  /// service added into UDDI" path). Builds and publishes the next snapshot —
  /// derived cache entries become unreachable and are purged (counted in
  /// Stats::cache_evictions) — and, when a full skyline is resident, folds
  /// the new points into it incrementally and re-seeds its cache entry
  /// instead of discarding it. Writers serialise; readers are never blocked
  /// beyond the snapshot pointer swap. Returns the version this batch
  /// published (the still-current version for an empty no-op batch) — under
  /// concurrency, version() may already be newer by the time the caller asks.
  std::uint64_t insert_batch(const data::PointSet& points);

  /// Applies one streaming tick — TTL expiry, explicit deletes, inserts,
  /// window eviction, in that order — and publishes the next snapshot plus
  /// its skyline delta (ISSUE 9 tentpole). The first call engages streaming
  /// mode: the resident dataset is bulk-loaded into an exact
  /// skyline::MaintainedSkyline, and from then on every published snapshot
  /// carries the full skyline (ascending-id dataset, exact under deletion —
  /// deleting a skyline member promotes exactly its exclusive dominees).
  /// Writers serialise with insert_batch; readers still only see the pointer
  /// swap. Deltas are fanned out to live subscriptions under the same writer
  /// ordering, so every subscriber observes versions in publication order.
  ApplyResult apply_batch(const MutationBatch& batch);

  /// True once apply_batch has engaged streaming (or a window option forces
  /// the first insert_batch onto the apply path).
  [[nodiscard]] bool streaming() const noexcept {
    return streaming_.load(std::memory_order_acquire) || options_.window_capacity > 0 ||
           options_.window_ticks > 0;
  }

  /// Registers a standing continuous-skyline query: the returned subscription
  /// carries a base (version, full skyline) pair and receives the delta of
  /// every later apply_batch, gaplessly — replaying deltas onto the base
  /// reproduces each published skyline bitwise. Ensures a full skyline is
  /// resident first (running one skyline query if needed). The subscription
  /// stays registered while the caller holds the pointer; close() (or
  /// dropping it) ends delivery.
  [[nodiscard]] StreamSubscriptionPtr subscribe();

  /// The engine's logical stream clock (ticks advanced by apply_batch).
  [[nodiscard]] std::uint64_t tick() const;

  /// The current snapshot. Holding the returned pointer keeps that version's
  /// dataset and skyline alive across later inserts — this is the handle a
  /// server session uses to answer consistently.
  [[nodiscard]] EngineSnapshotPtr snapshot() const;

  /// Convenience view of the current snapshot's dataset. The reference is
  /// only stable while no concurrent insert_batch retires the snapshot —
  /// single-caller code (CLI, benches) may use it freely; concurrent callers
  /// should hold snapshot() instead.
  [[nodiscard]] const data::PointSet& dataset() const { return *snapshot()->dataset; }
  [[nodiscard]] std::uint64_t version() const { return snapshot()->version; }

  /// Lifetime counters (monotone; for benches and tests).
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t fits_computed = 0;
    std::uint64_t fit_reuses = 0;
    std::uint64_t pipeline_runs = 0;
    std::uint64_t incremental_serves = 0;  ///< skyline served from the fold
    std::uint64_t inserts = 0;
    std::uint64_t points_inserted = 0;
    std::uint64_t cache_evictions = 0;  ///< LRU capacity + insert-purge evictions
    std::uint64_t queries_cancelled = 0;  ///< typed QueryCancelled aborts (deadline or cancel)
    // scheme=auto only: adaptive-planner activity and its prediction quality.
    std::uint64_t plans_computed = 0;   ///< adaptive plans built (one per version)
    std::uint64_t plan_reuses = 0;      ///< queries served from the plan memo
    std::uint64_t plan_predicted_ns = 0;  ///< summed predicted pipeline wall (planned runs)
    std::uint64_t plan_actual_ns = 0;     ///< summed measured pipeline wall (planned runs)
    // Streaming (apply_batch) activity.
    std::uint64_t apply_batches = 0;
    std::uint64_t points_deleted = 0;   ///< explicit deletes that hit a live point
    std::uint64_t points_expired = 0;   ///< TTL expiries + count-window evictions
    std::uint64_t deletes_missed = 0;   ///< delete requests for unknown ids
    std::uint64_t stream_entered = 0;   ///< skyline entries across all deltas
    std::uint64_t stream_left = 0;      ///< skyline exits across all deltas
    std::uint64_t deltas_published = 0; ///< delta deliveries to subscriptions
  };
  /// A consistent point-in-time copy of the counters. Thread-safe.
  [[nodiscard]] Stats stats() const;

  /// Current cache / fit-memo occupancy (for tests). Thread-safe.
  [[nodiscard]] std::size_t cache_entries() const;
  [[nodiscard]] std::size_t fit_entries() const;
  /// Plan-memo occupancy (scheme=auto; 0 otherwise). Thread-safe.
  [[nodiscard]] std::size_t plan_entries() const;

 private:
  /// What the result cache retains: the answer's data, never its
  /// QueryMetrics — metrics describe one execute() call (wall time, cache
  /// behaviour), so every hit synthesises fresh ones instead of patching a
  /// stale stored copy.
  struct CachedPayload {
    data::PointSet points{1};
    std::vector<std::size_t> coverage;
    std::size_t total_covered = 0;
    std::vector<skyline::ScoredPoint> ranking;
  };
  struct CacheEntry {
    std::string key;
    CachedPayload payload;
  };
  using FitPtr = std::shared_ptr<const part::Partitioner>;

  /// Cache key for `query` at `version`.
  [[nodiscard]] static std::string cache_key(const Query& query, std::uint64_t version);

  /// Looks up / fits-and-memoises the partitioner for `ps` under `fit_key`,
  /// constructing it from `config` (the resolved pipeline config — never
  /// scheme=auto) on a miss. The returned shared_ptr pins the fit: a
  /// concurrent insert_batch may retire the memo entry, but the fit object
  /// stays alive for this run.
  FitPtr prepared_fit(const data::PointSet& ps, const core::MRSkylineConfig& config,
                      const std::string& fit_key, bool& reused);

  /// The pipeline config queries at `snap` should run with: options_.config
  /// as-is for static schemes; under scheme=auto, the memoised adaptive plan
  /// for `snap`'s version (planned on first use, reused after — the plan
  /// fields of `metrics` record which). Thread-safe like prepared_fit: the
  /// planner runs outside the memo lock, racing planners produce identical
  /// plans (same data, same seed) and the loser adopts the winner.
  [[nodiscard]] core::MRSkylineConfig resolved_config(const EngineSnapshot& snap,
                                                      QueryMetrics& metrics);

  /// Runs the MapReduce pipeline over `ps` with `config` plus a prepared fit;
  /// returns the canonical (id-sorted) skyline and charges work into
  /// `result`. `cancel` rides into the run's RunOptions, so task loops poll
  /// it. Planned runs (result.metrics.planned) also feed the process cost
  /// model and the predicted-vs-actual counters.
  data::PointSet pipeline_skyline(const data::PointSet& ps,
                                  const core::MRSkylineConfig& config,
                                  const std::string& fit_key, QueryResult& result,
                                  const common::CancellationToken& cancel);

  /// Computes a fresh payload for `query` against the pinned snapshot.
  [[nodiscard]] QueryResult compute(const EngineSnapshot& snap, const Query& query,
                                    const common::CancellationToken& cancel);

  /// After a pipeline computed the full skyline at `snap`'s version: seed the
  /// insert-time fold and re-publish the snapshot with the skyline attached,
  /// unless a concurrent insert moved the version on (then the result is
  /// still correct for its version; it just cannot become the resident fold).
  void publish_full_skyline(const EngineSnapshot& snap, const data::PointSet& sky);

  void set_snapshot(EngineSnapshotPtr snap);

  /// Drops version-derived state after a write (fit memo, plan memo, result
  /// cache — evictions counted) and re-seeds the full-skyline cache entry for
  /// `published` when it carries one. Shared by insert_batch and apply_batch.
  void purge_derived_state(const EngineSnapshotPtr& published);

  /// Engages streaming mode (caller holds write_mutex_): bulk-loads the
  /// maintained structure from `dataset` and records arrival order.
  void engage_streaming(const data::PointSet& dataset);

  /// Fans `delta` out to live subscriptions (prunes dead ones).
  void publish_delta(const StreamDelta& delta);

  void cache_store(const std::string& key, std::uint64_t version, const CachedPayload& payload);
  [[nodiscard]] bool cache_find(const std::string& key, CachedPayload& out);

  QueryEngineOptions options_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< owned persistent pool (kThreads)

  /// Guards only the snapshot pointer itself (reads copy the shared_ptr out).
  mutable std::mutex snapshot_mutex_;
  EngineSnapshotPtr snapshot_;

  /// Serialises writers: insert_batch, apply_batch and first-skyline
  /// publication. Guards next_id_, the incremental fold, and the streaming
  /// state below. Mutable so tick() can read under it.
  mutable std::mutex write_mutex_;
  data::PointId next_id_ = 0;
  /// The resident fold, maintained across insert_batch() calls. Valid iff
  /// engaged and fold_version_ matches the published snapshot's version.
  /// Superseded by maintained_ once streaming engages (apply_batch resets it).
  std::optional<skyline::IncrementalSkyline> fold_;
  std::uint64_t fold_version_ = 0;

  /// Streaming state (guarded by write_mutex_; streaming_ is the lock-free
  /// "has apply_batch ever run" flag insert_batch routes on).
  std::atomic<bool> streaming_{false};
  std::unique_ptr<skyline::MaintainedSkyline> maintained_;
  std::uint64_t tick_ = 0;
  /// Pending TTL expiries: (expires_at_tick, id) min-heap, checked lazily
  /// against liveness (an id deleted early just pops as a no-op).
  std::priority_queue<std::pair<std::uint64_t, data::PointId>,
                      std::vector<std::pair<std::uint64_t, data::PointId>>,
                      std::greater<>>
      expiries_;
  /// Live insertion order for the count window (stale ids popped lazily).
  std::deque<data::PointId> arrival_order_;

  /// Live subscriptions (weak: a dropped subscriber unregisters itself).
  /// Publication happens under write_mutex_ THEN subs_mutex_; registration
  /// takes subs_mutex_ and reads the snapshot inside it — see subscribe().
  mutable std::mutex subs_mutex_;
  std::vector<std::weak_ptr<StreamSubscription>> subs_;

  /// Fit memo; keys embed the dataset version so a stale fit can never serve
  /// a newer dataset. Entries are dropped on insert; in-flight runs keep
  /// their fit alive through the shared_ptr they pinned.
  mutable std::mutex fits_mutex_;
  std::map<std::string, FitPtr> fits_;

  /// Adaptive-plan memo (scheme=auto): one entry per dataset version, keyed
  /// "v{version}/s{sample seed}". Dropped on insert like the fit memo;
  /// in-flight queries keep their plan alive through the shared_ptr.
  mutable std::mutex plans_mutex_;
  std::map<std::string, std::shared_ptr<const core::AdaptivePlan>> plans_;

  /// Result cache. Its own small mutex makes the LRU recency touch on the
  /// hit path safe without taking any engine-wide lock.
  mutable std::mutex cache_mutex_;
  std::list<CacheEntry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_index_;

  struct Counters {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> fits_computed{0};
    std::atomic<std::uint64_t> fit_reuses{0};
    std::atomic<std::uint64_t> pipeline_runs{0};
    std::atomic<std::uint64_t> incremental_serves{0};
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> points_inserted{0};
    std::atomic<std::uint64_t> cache_evictions{0};
    std::atomic<std::uint64_t> queries_cancelled{0};
    std::atomic<std::uint64_t> plans_computed{0};
    std::atomic<std::uint64_t> plan_reuses{0};
    std::atomic<std::uint64_t> plan_predicted_ns{0};
    std::atomic<std::uint64_t> plan_actual_ns{0};
    std::atomic<std::uint64_t> apply_batches{0};
    std::atomic<std::uint64_t> points_deleted{0};
    std::atomic<std::uint64_t> points_expired{0};
    std::atomic<std::uint64_t> deletes_missed{0};
    std::atomic<std::uint64_t> stream_entered{0};
    std::atomic<std::uint64_t> stream_left{0};
    std::atomic<std::uint64_t> deltas_published{0};
  };
  mutable Counters counters_;
};

}  // namespace mrsky::service
