#include "src/service/query_engine.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/dataset/transforms.hpp"
#include "src/partition/factory.hpp"
#include "src/skyline/extensions.hpp"

namespace mrsky::service {

namespace {

/// Ascending-id order: the engine's canonical result form. Stable on id ties
/// (duplicate ids only arise from hand-built datasets), so the output is a
/// pure function of the input set.
data::PointSet canonical_by_id(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

QueryEngine::QueryEngine(data::PointSet dataset, QueryEngineOptions options)
    : dataset_(std::move(dataset)), options_(std::move(options)) {
  MRSKY_REQUIRE(!dataset_.empty(), "QueryEngine needs a non-empty dataset");
  MRSKY_REQUIRE(options_.config.prepared_partitioner == nullptr,
                "QueryEngine owns fit preparation; leave prepared_partitioner null");
  options_.config.validate_or_throw();

  // One persistent worker pool for the engine's lifetime: every kThreads
  // pipeline run reuses it instead of paying thread start-up per query.
  auto& run = options_.config.run_options;
  if (run.mode == mr::ExecutionMode::kThreads && run.pool == nullptr) {
    const std::size_t threads =
        run.num_threads == 0 ? common::ThreadPool::default_concurrency() : run.num_threads;
    pool_ = std::make_unique<common::ThreadPool>(threads);
    run.pool = pool_.get();
  }
  if (options_.trace != nullptr && run.trace == nullptr) run.trace = options_.trace;

  for (data::PointId id : dataset_.ids()) next_id_ = std::max(next_id_, id + 1);
}

std::string QueryEngine::cache_key(const Query& query) const {
  return query_signature(query) + "|v" + std::to_string(version_);
}

const QueryResult* QueryEngine::cache_find(const std::string& key) {
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return &it->second->payload;
}

void QueryEngine::cache_store(const std::string& key, const QueryResult& payload) {
  if (options_.cache_capacity == 0) return;
  if (auto it = cache_index_.find(key); it != cache_index_.end()) {
    it->second->payload = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, payload});
  cache_index_[key] = lru_.begin();
  while (cache_index_.size() > options_.cache_capacity) {
    cache_index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

const part::Partitioner& QueryEngine::prepared_fit(const data::PointSet& ps,
                                                   const std::string& fit_key, bool& reused) {
  if (auto it = fits_.find(fit_key); it != fits_.end()) {
    reused = true;
    ++stats_.fit_reuses;
    return *it->second;
  }
  reused = false;
  ++stats_.fits_computed;
  common::ScopedSpan span(options_.trace, "prepared-fit", "service");
  span.arg("key", fit_key);

  const auto& cfg = options_.config;
  part::PartitionerOptions popts;
  popts.num_partitions = cfg.effective_partitions();
  popts.split_dim = cfg.split_dim;
  part::PartitionerPtr partitioner = part::make_partitioner(cfg.scheme, popts);
  if (cfg.fit_sample_size > 0 && cfg.fit_sample_size < ps.size()) {
    common::Rng rng(cfg.fit_sample_seed);
    partitioner->fit(data::sample_without_replacement(ps, cfg.fit_sample_size, rng));
    span.arg("fitted_points", cfg.fit_sample_size);
  } else {
    partitioner->fit(ps);
    span.arg("fitted_points", ps.size());
  }
  span.arg("partitions", partitioner->num_partitions());
  return *fits_.emplace(fit_key, std::move(partitioner)).first->second;
}

data::PointSet QueryEngine::pipeline_skyline(const data::PointSet& ps,
                                             const std::string& fit_key, QueryResult& result) {
  core::MRSkylineConfig config = options_.config;
  config.prepared_partitioner = &prepared_fit(ps, fit_key, result.metrics.fit_reused);
  ++stats_.pipeline_runs;
  const core::MRSkylineResult run = core::run_mr_skyline(ps, config);
  result.metrics.dominance_tests += run.partition_job.total_work_units();
  for (const auto& round : run.merge_rounds) {
    result.metrics.dominance_tests += round.total_work_units();
  }
  return canonical_by_id(run.skyline);
}

QueryResult QueryEngine::compute(const Query& query) {
  QueryResult result;
  std::visit(
      Overloaded{
          [&](const SkylineQuery&) {
            if (full_skyline_.has_value() && full_skyline_version_ == version_) {
              // The resident fold is current (insert_batch path with the
              // cache entry evicted or caching off): serve it directly.
              ++stats_.incremental_serves;
              result.points = canonical_by_id(full_skyline_->skyline());
              return;
            }
            const std::string fit_key =
                part::to_string(options_.config.scheme) + "/p" +
                std::to_string(options_.config.effective_partitions()) + "/s" +
                std::to_string(options_.config.fit_sample_size) + "." +
                std::to_string(options_.config.fit_sample_seed) + "/full";
            result.points = pipeline_skyline(dataset_, fit_key, result);
            full_skyline_.emplace(result.points);
            full_skyline_version_ = version_;
          },
          [&](const SubspaceQuery& q) {
            const data::PointSet projected = data::project(dataset_, q.attributes);
            std::string fit_key = part::to_string(options_.config.scheme) + "/p" +
                                  std::to_string(options_.config.effective_partitions()) +
                                  "/s" + std::to_string(options_.config.fit_sample_size) +
                                  "." + std::to_string(options_.config.fit_sample_seed) +
                                  "/sub:";
            for (std::size_t i = 0; i < q.attributes.size(); ++i) {
              if (i > 0) fit_key += ',';
              fit_key += std::to_string(q.attributes[i]);
            }
            result.points = pipeline_skyline(projected, fit_key, result);
          },
          [&](const KSkybandQuery& q) {
            skyline::SkylineStats stats;
            result.points = canonical_by_id(skyline::k_skyband(dataset_, q.k, &stats));
            result.metrics.dominance_tests = stats.dominance_tests;
          },
          [&](const RepresentativeQuery& q) {
            // Pick order is meaningful (aligned with coverage): no id sort.
            skyline::RepresentativeResult rep =
                skyline::representative_skyline(dataset_, q.k);
            result.points = std::move(rep.representatives);
            result.coverage = std::move(rep.coverage);
            result.total_covered = rep.total_covered;
          },
          [&](const TopKWeightedQuery& q) {
            result.ranking = skyline::top_k_weighted(dataset_, q.weights, q.k);
          }},
      query);
  return result;
}

QueryResult QueryEngine::execute(const Query& query) {
  {
    const std::vector<std::string> errors = validate_query(query, dataset_.dim());
    if (!errors.empty()) {
      std::string message = "invalid " + query_kind(query) + " query (" +
                            std::to_string(errors.size()) +
                            (errors.size() == 1 ? " problem):" : " problems):");
      for (const std::string& e : errors) message += "\n  - " + e;
      throw InvalidArgument(message);
    }
  }

  common::Timer wall;
  common::ScopedSpan span(options_.trace, "query", "service");
  span.arg("kind", query_kind(query));
  span.arg("version", version_);
  ++stats_.queries;

  const std::string key = cache_key(query);
  if (options_.cache_capacity > 0) {
    if (const QueryResult* cached = cache_find(key); cached != nullptr) {
      ++stats_.cache_hits;
      QueryResult result = *cached;  // bitwise-identical payload copy
      result.metrics = QueryMetrics{};
      result.metrics.cache_hit = true;
      result.metrics.dataset_version = version_;
      result.metrics.result_points =
          result.ranking.empty() ? result.points.size() : result.ranking.size();
      result.metrics.wall_ns = wall.elapsed_ns();
      span.arg("cache_hit", 1);
      span.arg("points", result.metrics.result_points);
      return result;
    }
  }

  QueryResult result = compute(query);
  result.metrics.dataset_version = version_;
  result.metrics.result_points =
      result.ranking.empty() ? result.points.size() : result.ranking.size();
  cache_store(key, result);
  result.metrics.wall_ns = wall.elapsed_ns();
  span.arg("cache_hit", 0);
  span.arg("points", result.metrics.result_points);
  span.arg("dominance_tests", result.metrics.dominance_tests);
  return result;
}

std::vector<QueryResult> QueryEngine::execute_batch(std::span<const Query> queries) {
  common::ScopedSpan span(options_.trace, "query-batch", "service");
  span.arg("queries", queries.size());
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const Query& q : queries) results.push_back(execute(q));
  return results;
}

void QueryEngine::insert_batch(const data::PointSet& points) {
  MRSKY_REQUIRE(points.dim() == dataset_.dim(),
                "insert_batch dimension mismatch: batch has " + std::to_string(points.dim()) +
                    " attributes, dataset has " + std::to_string(dataset_.dim()));
  if (points.empty()) return;

  common::ScopedSpan span(options_.trace, "insert-batch", "service");
  span.arg("points", points.size());
  span.arg("version", version_ + 1);
  ++stats_.inserts;
  stats_.points_inserted += points.size();

  const bool fold = full_skyline_.has_value() && full_skyline_version_ == version_;
  dataset_.reserve(dataset_.size() + points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const data::PointId id = next_id_++;
    dataset_.push_back(points.point(i), id);
    if (fold) full_skyline_->insert(points.point(i), id);
  }

  ++version_;
  // Partition fits were learned on the old data; drop them so the next
  // pipeline run re-plans (MR-Grid's pruning in particular must never act on
  // stale cell occupancy).
  fits_.clear();
  // Version-keyed entries can no longer hit; purge them eagerly so cache
  // occupancy reflects live entries only.
  lru_.clear();
  cache_index_.clear();

  if (fold) {
    full_skyline_version_ = version_;
    // Refresh the full-skyline entry at the new version: the one query kind
    // an insert does NOT invalidate.
    QueryResult payload;
    payload.points = canonical_by_id(full_skyline_->skyline());
    payload.metrics.dataset_version = version_;
    payload.metrics.result_points = payload.points.size();
    cache_store(cache_key(Query{SkylineQuery{}}), payload);
    span.arg("skyline_points", payload.points.size());
  } else {
    full_skyline_.reset();
  }
}

}  // namespace mrsky::service
