#include "src/service/query_engine.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/timer.hpp"
#include "src/core/cost_model.hpp"
#include "src/dataset/transforms.hpp"
#include "src/partition/factory.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/extensions.hpp"

namespace mrsky::service {

namespace {

/// Ascending-id order: the engine's canonical result form. Stable on id ties
/// (duplicate ids only arise from hand-built datasets), so the output is a
/// pure function of the input set.
data::PointSet canonical_by_id(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

QueryEngine::QueryEngine(data::PointSet dataset, QueryEngineOptions options)
    : options_(std::move(options)) {
  MRSKY_REQUIRE(!dataset.empty(), "QueryEngine needs a non-empty dataset");
  MRSKY_REQUIRE(options_.config.prepared_partitioner == nullptr,
                "QueryEngine owns fit preparation; leave prepared_partitioner null");
  options_.config.validate_or_throw();

  // One persistent worker pool for the engine's lifetime: every kThreads
  // pipeline run reuses it instead of paying thread start-up per query.
  // ThreadPool::parallel_for keeps all of its state per-call, so concurrent
  // sessions can run pipelines on this one pool simultaneously.
  auto& run = options_.config.run_options;
  if (run.mode == mr::ExecutionMode::kThreads && run.pool == nullptr) {
    const std::size_t threads =
        run.num_threads == 0 ? common::ThreadPool::default_concurrency() : run.num_threads;
    pool_ = std::make_unique<common::ThreadPool>(threads);
    run.pool = pool_.get();
  }
  if (options_.trace != nullptr && run.trace == nullptr) run.trace = options_.trace;

  for (data::PointId id : dataset.ids()) next_id_ = std::max(next_id_, id + 1);

  auto snap = std::make_shared<EngineSnapshot>();
  snap->version = 0;
  snap->dataset = std::make_shared<const data::PointSet>(std::move(dataset));
  snapshot_ = std::move(snap);
}

QueryEngine::QueryEngine(const data::DatasetSource& source, QueryEngineOptions options)
    : QueryEngine(source.materialize(), std::move(options)) {}

QueryEngine::~QueryEngine() {
  std::lock_guard<std::mutex> lock(subs_mutex_);
  for (const auto& weak : subs_) {
    if (StreamSubscriptionPtr sub = weak.lock()) sub->close();
  }
}

EngineSnapshotPtr QueryEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void QueryEngine::set_snapshot(EngineSnapshotPtr snap) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
}

QueryEngine::Stats QueryEngine::stats() const {
  Stats out;
  out.queries = counters_.queries.load(std::memory_order_relaxed);
  out.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  out.fits_computed = counters_.fits_computed.load(std::memory_order_relaxed);
  out.fit_reuses = counters_.fit_reuses.load(std::memory_order_relaxed);
  out.pipeline_runs = counters_.pipeline_runs.load(std::memory_order_relaxed);
  out.incremental_serves = counters_.incremental_serves.load(std::memory_order_relaxed);
  out.inserts = counters_.inserts.load(std::memory_order_relaxed);
  out.points_inserted = counters_.points_inserted.load(std::memory_order_relaxed);
  out.cache_evictions = counters_.cache_evictions.load(std::memory_order_relaxed);
  out.queries_cancelled = counters_.queries_cancelled.load(std::memory_order_relaxed);
  out.plans_computed = counters_.plans_computed.load(std::memory_order_relaxed);
  out.plan_reuses = counters_.plan_reuses.load(std::memory_order_relaxed);
  out.plan_predicted_ns = counters_.plan_predicted_ns.load(std::memory_order_relaxed);
  out.plan_actual_ns = counters_.plan_actual_ns.load(std::memory_order_relaxed);
  out.apply_batches = counters_.apply_batches.load(std::memory_order_relaxed);
  out.points_deleted = counters_.points_deleted.load(std::memory_order_relaxed);
  out.points_expired = counters_.points_expired.load(std::memory_order_relaxed);
  out.deletes_missed = counters_.deletes_missed.load(std::memory_order_relaxed);
  out.stream_entered = counters_.stream_entered.load(std::memory_order_relaxed);
  out.stream_left = counters_.stream_left.load(std::memory_order_relaxed);
  out.deltas_published = counters_.deltas_published.load(std::memory_order_relaxed);
  return out;
}

std::size_t QueryEngine::cache_entries() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_index_.size();
}

std::size_t QueryEngine::fit_entries() const {
  std::lock_guard<std::mutex> lock(fits_mutex_);
  return fits_.size();
}

std::size_t QueryEngine::plan_entries() const {
  std::lock_guard<std::mutex> lock(plans_mutex_);
  return plans_.size();
}

std::string QueryEngine::cache_key(const Query& query, std::uint64_t version) {
  return query_signature(query) + "|v" + std::to_string(version);
}

bool QueryEngine::cache_find(const std::string& key, CachedPayload& out) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return false;
  // The recency touch mutates only cache-internal state, under the cache's
  // own mutex — a hit is read-only with respect to every other engine lock.
  lru_.splice(lru_.begin(), lru_, it->second);
  out = it->second->payload;  // copied under the lock: eviction-safe
  return true;
}

void QueryEngine::cache_store(const std::string& key, std::uint64_t version,
                              const CachedPayload& payload) {
  if (options_.cache_capacity == 0) return;
  // A compute that raced with an insert would store an entry no future
  // lookup can reach (keys embed the version); skip it so occupancy tracks
  // live entries. The check is best-effort — a racing insert right after it
  // just leaves one unreachable entry for the LRU to age out.
  if (version != snapshot()->version) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (auto it = cache_index_.find(key); it != cache_index_.end()) {
    it->second->payload = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, payload});
  cache_index_[key] = lru_.begin();
  while (cache_index_.size() > options_.cache_capacity) {
    cache_index_.erase(lru_.back().key);
    lru_.pop_back();
    counters_.cache_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

QueryEngine::FitPtr QueryEngine::prepared_fit(const data::PointSet& ps,
                                              const core::MRSkylineConfig& config,
                                              const std::string& fit_key, bool& reused) {
  {
    std::lock_guard<std::mutex> lock(fits_mutex_);
    if (auto it = fits_.find(fit_key); it != fits_.end()) {
      reused = true;
      counters_.fit_reuses.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  reused = false;
  counters_.fits_computed.fetch_add(1, std::memory_order_relaxed);
  common::ScopedSpan span(options_.trace, "prepared-fit", "service");
  span.arg("key", fit_key);

  // Fit outside the lock: fitting is the expensive part, and two sessions
  // racing on the same key deterministically produce identical fits (same
  // data, same seed) — the second emplace loses and adopts the winner.
  const auto& cfg = config;
  part::PartitionerOptions popts;
  popts.num_partitions = cfg.effective_partitions();
  popts.split_dim = cfg.split_dim;
  part::PartitionerPtr partitioner = part::make_partitioner(cfg.scheme, popts);
  if (cfg.fit_sample_size > 0 && cfg.fit_sample_size < ps.size()) {
    common::Rng rng(cfg.fit_sample_seed);
    partitioner->fit(data::sample_without_replacement(ps, cfg.fit_sample_size, rng));
    span.arg("fitted_points", cfg.fit_sample_size);
  } else {
    partitioner->fit(ps);
    span.arg("fitted_points", ps.size());
  }
  span.arg("partitions", partitioner->num_partitions());

  FitPtr shared{std::move(partitioner)};
  std::lock_guard<std::mutex> lock(fits_mutex_);
  return fits_.try_emplace(fit_key, std::move(shared)).first->second;
}

core::MRSkylineConfig QueryEngine::resolved_config(const EngineSnapshot& snap,
                                                   QueryMetrics& metrics) {
  if (options_.config.scheme != part::Scheme::kAuto) return options_.config;
  metrics.planned = true;
  const std::string key = "v" + std::to_string(snap.version) + "/s" +
                          std::to_string(options_.config.fit_sample_seed);
  std::shared_ptr<const core::AdaptivePlan> plan;
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    if (auto it = plans_.find(key); it != plans_.end()) plan = it->second;
  }
  if (plan != nullptr) {
    metrics.plan_reused = true;
    counters_.plan_reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Plan outside the lock, same discipline as prepared_fit: planning is
    // the expensive part, and two racing planners produce identical plans
    // (same snapshot, same seed) — the losing emplace adopts the winner.
    counters_.plans_computed.fetch_add(1, std::memory_order_relaxed);
    common::ScopedSpan span(options_.trace, "adaptive-plan", "service");
    span.arg("version", snap.version);
    core::AdaptivePlannerOptions popts;
    popts.sample_seed = options_.config.fit_sample_seed;
    auto fresh = std::make_shared<core::AdaptivePlan>(
        core::AdaptivePlanner(popts).plan(*snap.dataset, options_.config));
    span.arg("scheme", part::to_string(fresh->config.scheme));
    span.arg("partitions", fresh->config.effective_partitions());
    span.arg("candidates", fresh->candidates.size());
    span.arg("fallback", fresh->fallback ? 1 : 0);
    std::lock_guard<std::mutex> lock(plans_mutex_);
    plan = plans_.try_emplace(key, std::move(fresh)).first->second;
    metrics.plan_planning_ns = static_cast<std::int64_t>(plan->planning_seconds * 1e9);
  }
  metrics.plan_scheme = part::to_string(plan->config.scheme);
  metrics.plan_partitions = plan->config.effective_partitions();
  metrics.plan_predicted_ns =
      plan->fallback ? 0 : static_cast<std::int64_t>(plan->chosen.total_seconds() * 1e9);
  return plan->config;
}

data::PointSet QueryEngine::pipeline_skyline(const data::PointSet& ps,
                                             const core::MRSkylineConfig& base,
                                             const std::string& fit_key, QueryResult& result,
                                             const common::CancellationToken& cancel) {
  // Pin the fit for the whole run: a concurrent insert_batch may clear the
  // memo, but this shared_ptr keeps the partitioner alive until the pipeline
  // is done with it (the old `const Partitioner&` into the map dangled here).
  const FitPtr fit = prepared_fit(ps, base, fit_key, result.metrics.fit_reused);
  core::MRSkylineConfig config = base;
  config.prepared_partitioner = fit.get();
  config.run_options.cancel = cancel;
  counters_.pipeline_runs.fetch_add(1, std::memory_order_relaxed);
  const core::MRSkylineResult run = core::run_mr_skyline(ps, config);
  std::uint64_t work = run.partition_job.total_work_units();
  std::uint64_t shuffled = run.partition_job.shuffle_records;
  result.metrics.dominance_tests += run.partition_job.total_work_units();
  for (const auto& round : run.merge_rounds) {
    result.metrics.dominance_tests += round.total_work_units();
    work += round.total_work_units();
    shuffled += round.shuffle_records;
  }
  if (result.metrics.planned) {
    // Predicted-vs-actual bookkeeping plus cost-model refinement: a resident
    // engine converges its dominance-test rate onto what this process really
    // sustains under serving load.
    counters_.plan_predicted_ns.fetch_add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, result.metrics.plan_predicted_ns)),
        std::memory_order_relaxed);
    counters_.plan_actual_ns.fetch_add(static_cast<std::uint64_t>(run.wall_seconds * 1e9),
                                       std::memory_order_relaxed);
    core::CostModel::process().observe_run(work, shuffled, run.wall_seconds);
  }
  return canonical_by_id(run.skyline);
}

void QueryEngine::publish_full_skyline(const EngineSnapshot& snap, const data::PointSet& sky) {
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  const EngineSnapshotPtr current = snapshot();
  if (current->version != snap.version || current->full_skyline != nullptr) return;
  fold_.emplace(sky);
  fold_version_ = snap.version;
  auto next = std::make_shared<EngineSnapshot>();
  next->version = snap.version;
  next->dataset = current->dataset;
  next->full_skyline = std::make_shared<const data::PointSet>(sky);
  set_snapshot(std::move(next));
}

QueryResult QueryEngine::compute(const EngineSnapshot& snap, const Query& query,
                                 const common::CancellationToken& cancel) {
  const data::PointSet& dataset = *snap.dataset;
  QueryResult result;
  std::visit(
      Overloaded{
          [&](const SkylineQuery&) {
            if (snap.full_skyline != nullptr) {
              // The pinned snapshot carries a current skyline (insert-time
              // fold or an earlier pipeline run, with the cache entry evicted
              // or caching off): serve it directly.
              counters_.incremental_serves.fetch_add(1, std::memory_order_relaxed);
              result.points = *snap.full_skyline;
              return;
            }
            const core::MRSkylineConfig cfg = resolved_config(snap, result.metrics);
            const std::string fit_key =
                "v" + std::to_string(snap.version) + "/" + part::to_string(cfg.scheme) +
                "/p" + std::to_string(cfg.effective_partitions()) + "/s" +
                std::to_string(cfg.fit_sample_size) + "." +
                std::to_string(cfg.fit_sample_seed) + "/full";
            result.points = pipeline_skyline(dataset, cfg, fit_key, result, cancel);
            // A query that was cancelled between task-loop polls may still
            // hold a complete skyline; it must NOT become the resident fold —
            // the caller sees the typed abort, so nothing it produced may be
            // observable (decision 13).
            cancel.throw_if_stopped("full-skyline publication");
            publish_full_skyline(snap, result.points);
          },
          [&](const SubspaceQuery& q) {
            const data::PointSet projected = data::project(dataset, q.attributes);
            // Subspace pipelines reuse the full-dataset plan's shape: the
            // projection is derived data at the same version, and planning
            // per attribute subset would multiply planner work for marginal
            // gain (the fit is still per-subspace via the key suffix).
            const core::MRSkylineConfig cfg = resolved_config(snap, result.metrics);
            std::string fit_key = "v" + std::to_string(snap.version) + "/" +
                                  part::to_string(cfg.scheme) + "/p" +
                                  std::to_string(cfg.effective_partitions()) + "/s" +
                                  std::to_string(cfg.fit_sample_size) + "." +
                                  std::to_string(cfg.fit_sample_seed) + "/sub:";
            for (std::size_t i = 0; i < q.attributes.size(); ++i) {
              if (i > 0) fit_key += ',';
              fit_key += std::to_string(q.attributes[i]);
            }
            result.points = pipeline_skyline(projected, cfg, fit_key, result, cancel);
          },
          [&](const KSkybandQuery& q) {
            cancel.throw_if_stopped("k-skyband scan");
            skyline::SkylineStats stats;
            result.points = canonical_by_id(skyline::k_skyband(dataset, q.k, &stats));
            result.metrics.dominance_tests = stats.dominance_tests;
          },
          [&](const RepresentativeQuery& q) {
            cancel.throw_if_stopped("representative scan");
            // Pick order is meaningful (aligned with coverage): no id sort.
            skyline::RepresentativeResult rep = skyline::representative_skyline(dataset, q.k);
            result.points = std::move(rep.representatives);
            result.coverage = std::move(rep.coverage);
            result.total_covered = rep.total_covered;
          },
          [&](const TopKWeightedQuery& q) {
            cancel.throw_if_stopped("top-k scan");
            result.ranking = skyline::top_k_weighted(dataset, q.weights, q.k);
          }},
      query);
  return result;
}

QueryResult QueryEngine::execute(const Query& query) { return execute(query, {}); }

QueryResult QueryEngine::execute(const Query& query, const common::CancellationToken& cancel) {
  // Pin one snapshot for the whole call: every read below — validation,
  // cache key, compute — sees this version, regardless of concurrent inserts.
  const EngineSnapshotPtr snap = snapshot();
  {
    const std::vector<std::string> errors = validate_query(query, snap->dataset->dim());
    if (!errors.empty()) {
      std::string message = "invalid " + query_kind(query) + " query (" +
                            std::to_string(errors.size()) +
                            (errors.size() == 1 ? " problem):" : " problems):");
      for (const std::string& e : errors) message += "\n  - " + e;
      throw InvalidArgument(message);
    }
  }

  common::Timer wall;
  common::ScopedSpan span(options_.trace, "query", "service");
  span.arg("kind", query_kind(query));
  span.arg("version", snap->version);
  counters_.queries.fetch_add(1, std::memory_order_relaxed);

  try {
    // Admission poll BEFORE the cache lookup: a request arriving with an
    // already-expired deadline gets the typed error deterministically, even
    // for a query whose answer is sitting in the cache.
    cancel.throw_if_stopped("query admission");

    const std::string key = cache_key(query, snap->version);
    if (options_.cache_capacity > 0) {
      if (CachedPayload cached; cache_find(key, cached)) {
        counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        QueryResult result;  // fresh metrics: the cache never stores any
        result.points = std::move(cached.points);
        result.coverage = std::move(cached.coverage);
        result.total_covered = cached.total_covered;
        result.ranking = std::move(cached.ranking);
        result.metrics.cache_hit = true;
        result.metrics.dataset_version = snap->version;
        result.metrics.result_points =
            result.ranking.empty() ? result.points.size() : result.ranking.size();
        result.metrics.wall_ns = wall.elapsed_ns();
        span.arg("cache_hit", 1);
        span.arg("points", result.metrics.result_points);
        return result;
      }
    }

    QueryResult result = compute(*snap, query, cancel);
    result.metrics.dataset_version = snap->version;
    result.metrics.result_points =
        result.ranking.empty() ? result.points.size() : result.ranking.size();
    // Final poll before the answer becomes observable: a cancelled query
    // never seeds the result cache, even when its compute happened to finish.
    cancel.throw_if_stopped("result publication");
    cache_store(
        key, snap->version,
        CachedPayload{result.points, result.coverage, result.total_covered, result.ranking});
    result.metrics.wall_ns = wall.elapsed_ns();
    span.arg("cache_hit", 0);
    span.arg("points", result.metrics.result_points);
    span.arg("dominance_tests", result.metrics.dominance_tests);
    return result;
  } catch (const QueryCancelled&) {
    counters_.queries_cancelled.fetch_add(1, std::memory_order_relaxed);
    span.arg("cancelled", 1);
    throw;
  }
}

std::vector<QueryResult> QueryEngine::execute_batch(std::span<const Query> queries) {
  common::ScopedSpan span(options_.trace, "query-batch", "service");
  span.arg("queries", queries.size());
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const Query& q : queries) results.push_back(execute(q));
  return results;
}

std::uint64_t QueryEngine::insert_batch(const data::PointSet& points) {
  // In streaming mode every mutation goes through apply_batch, so a plain
  // insert still respects windows/TTL and publishes a delta to subscribers.
  if (streaming()) {
    MutationBatch batch;
    batch.inserts = points;
    return apply_batch(batch).snapshot->version;
  }
  // Writers serialise here; readers keep serving their pinned snapshots and
  // only observe the insert at the final pointer swap.
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  const EngineSnapshotPtr old = snapshot();
  MRSKY_REQUIRE(points.dim() == old->dataset->dim(),
                "insert_batch dimension mismatch: batch has " + std::to_string(points.dim()) +
                    " attributes, dataset has " + std::to_string(old->dataset->dim()));
  if (points.empty()) return old->version;

  common::ScopedSpan span(options_.trace, "insert-batch", "service");
  span.arg("points", points.size());
  span.arg("version", old->version + 1);
  counters_.inserts.fetch_add(1, std::memory_order_relaxed);
  counters_.points_inserted.fetch_add(points.size(), std::memory_order_relaxed);

  const bool fold = fold_.has_value() && fold_version_ == old->version;
  auto grown = std::make_shared<data::PointSet>(*old->dataset);
  grown->reserve(grown->size() + points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const data::PointId id = next_id_++;
    grown->push_back(points.point(i), id);
    if (fold) fold_->insert(points.point(i), id);
  }

  auto next = std::make_shared<EngineSnapshot>();
  next->version = old->version + 1;
  next->dataset = std::move(grown);
  if (fold) {
    fold_version_ = next->version;
    next->full_skyline =
        std::make_shared<const data::PointSet>(canonical_by_id(fold_->skyline()));
    span.arg("skyline_points", next->full_skyline->size());
  } else {
    fold_.reset();
  }
  const EngineSnapshotPtr published = next;
  set_snapshot(std::move(next));
  purge_derived_state(published);
  return published->version;
}

void QueryEngine::purge_derived_state(const EngineSnapshotPtr& published) {
  // Partition fits were learned on the old data; drop the memo so the next
  // pipeline run re-plans (MR-Grid's pruning in particular must never act on
  // stale cell occupancy). In-flight runs pinned their fit via shared_ptr.
  {
    std::lock_guard<std::mutex> lock(fits_mutex_);
    fits_.clear();
  }
  // The adaptive plan was scored against the old data's sample; a new
  // version replans on first use (in-flight queries keep theirs pinned).
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    plans_.clear();
  }
  // Version-keyed entries can no longer hit; purge them eagerly — counted as
  // evictions — so cache occupancy reflects live entries only.
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    counters_.cache_evictions.fetch_add(cache_index_.size(), std::memory_order_relaxed);
    lru_.clear();
    cache_index_.clear();
  }

  if (published->full_skyline != nullptr) {
    // Refresh the full-skyline entry at the new version: the one query kind
    // a write does NOT invalidate.
    CachedPayload payload;
    payload.points = *published->full_skyline;
    cache_store(cache_key(Query{SkylineQuery{}}, published->version), published->version,
                payload);
  }
}

void QueryEngine::engage_streaming(const data::PointSet& dataset) {
  maintained_ = std::make_unique<skyline::MaintainedSkyline>(dataset);
  for (data::PointId id : dataset.ids()) arrival_order_.push_back(id);
  // The IncrementalSkyline fold cannot process deletions; the maintained
  // structure replaces it for good.
  fold_.reset();
  streaming_.store(true, std::memory_order_release);
}

void QueryEngine::publish_delta(const StreamDelta& delta) {
  std::lock_guard<std::mutex> lock(subs_mutex_);
  std::size_t live = 0;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (StreamSubscriptionPtr sub = subs_[i].lock()) {
      sub->publish(delta);
      // Compact dead entries in place; a self-move would EMPTY the weak_ptr.
      if (live != i) subs_[live] = std::move(subs_[i]);
      ++live;
      counters_.deltas_published.fetch_add(1, std::memory_order_relaxed);
    }
  }
  subs_.resize(live);
}

ApplyResult QueryEngine::apply_batch(const MutationBatch& batch) {
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  const EngineSnapshotPtr old = snapshot();
  if (!batch.inserts.empty()) {
    MRSKY_REQUIRE(batch.inserts.dim() == old->dataset->dim(),
                  "apply_batch dimension mismatch: batch has " +
                      std::to_string(batch.inserts.dim()) + " attributes, dataset has " +
                      std::to_string(old->dataset->dim()));
  }
  MRSKY_REQUIRE(batch.ttl_ticks.empty() || batch.ttl_ticks.size() == batch.inserts.size(),
                "apply_batch: ttl_ticks must be empty or parallel to inserts (" +
                    std::to_string(batch.ttl_ticks.size()) + " ttls for " +
                    std::to_string(batch.inserts.size()) + " inserts)");

  if (maintained_ == nullptr) engage_streaming(*old->dataset);
  ++tick_;

  common::ScopedSpan span(options_.trace, "apply-batch", "service");
  span.arg("tick", tick_);
  span.arg("version", old->version + 1);
  counters_.apply_batches.fetch_add(1, std::memory_order_relaxed);

  StreamDelta delta;
  delta.tick = tick_;
  delta.version = old->version + 1;
  delta.entered = data::PointSet(old->dataset->dim());
  const std::vector<data::PointId> before = maintained_->skyline_ids();
  std::vector<data::PointId> removed_ids;
  std::vector<data::PointId> new_ids;

  // 1. TTL expiry. Liveness is checked lazily: an id deleted before its
  // expiry just pops as a no-op (ids are never reused, so no ambiguity).
  while (!expiries_.empty() && expiries_.top().first <= tick_) {
    const data::PointId id = expiries_.top().second;
    expiries_.pop();
    if (maintained_->erase(id).erased) {
      ++delta.expired;
      removed_ids.push_back(id);
    }
  }

  // 2. Explicit deletes.
  for (data::PointId id : batch.deletes) {
    if (maintained_->erase(id).erased) {
      ++delta.deleted;
      removed_ids.push_back(id);
    } else {
      ++delta.missing_deletes;
    }
  }

  // 3. Inserts, under fresh engine ids (insert_batch's contract).
  for (std::size_t i = 0; i < batch.inserts.size(); ++i) {
    const data::PointId id = next_id_++;
    (void)maintained_->insert(batch.inserts.point(i), id);
    arrival_order_.push_back(id);
    new_ids.push_back(id);
    const std::int64_t requested = batch.ttl_ticks.empty() ? 0 : batch.ttl_ticks[i];
    const std::uint64_t ttl = requested > 0 ? static_cast<std::uint64_t>(requested)
                                            : options_.window_ticks;
    if (ttl > 0) expiries_.emplace(tick_ + ttl, id);
    ++delta.inserted;
  }

  // 4. Count-window eviction: oldest surviving arrivals leave first.
  if (options_.window_capacity > 0) {
    while (maintained_->size() > options_.window_capacity && !arrival_order_.empty()) {
      const data::PointId id = arrival_order_.front();
      arrival_order_.pop_front();
      if (maintained_->erase(id).erased) {
        ++delta.expired;
        removed_ids.push_back(id);
      }
    }
  }

  // Publish: streaming snapshots canonicalise the dataset to ascending-id
  // order and always carry the exact full skyline. The previous snapshot is
  // already ascending and fresh ids sort after every existing one, so the
  // next dataset is one linear merge-skip pass over contiguous rows — NOT a
  // re-canonicalisation of the whole live set from the hash index, which
  // would make every tick pay an O(n log n) scatter-sort for a handful of
  // mutations.
  std::sort(removed_ids.begin(), removed_ids.end());
  const data::PointSet& prev = *old->dataset;
  auto live = std::make_shared<data::PointSet>(prev.dim());
  live->reserve(prev.size() + new_ids.size());
  std::size_t ri = 0;
  for (std::size_t i = 0; i < prev.size(); ++i) {
    const data::PointId id = prev.id(i);
    while (ri < removed_ids.size() && removed_ids[ri] < id) ++ri;
    if (ri < removed_ids.size() && removed_ids[ri] == id) {
      ++ri;
      continue;
    }
    live->push_back(prev.point(i), id);
  }
  for (std::size_t i = 0; i < new_ids.size(); ++i) {
    // A count window smaller than the batch can evict a row inserted this
    // very tick; those ids are in removed_ids, not in the previous snapshot.
    if (std::binary_search(removed_ids.begin(), removed_ids.end(), new_ids[i])) continue;
    live->push_back(batch.inserts.point(i), new_ids[i]);
  }

  auto next = std::make_shared<EngineSnapshot>();
  next->version = delta.version;
  next->dataset = std::move(live);
  next->full_skyline = std::make_shared<const data::PointSet>(maintained_->skyline_points());
  span.arg("live_points", next->dataset->size());
  span.arg("skyline_points", next->full_skyline->size());

  // Skyline diff vs the previous version (both sides ascending by id).
  const data::PointSet& after = *next->full_skyline;
  std::size_t bi = 0;
  for (std::size_t ai = 0; ai < after.size(); ++ai) {
    const data::PointId id = after.id(ai);
    while (bi < before.size() && before[bi] < id) {
      delta.left.push_back(before[bi]);
      ++bi;
    }
    if (bi < before.size() && before[bi] == id) {
      ++bi;
    } else {
      delta.entered.push_back(after.point(ai), id);
    }
  }
  while (bi < before.size()) {
    delta.left.push_back(before[bi]);
    ++bi;
  }

  counters_.points_deleted.fetch_add(delta.deleted, std::memory_order_relaxed);
  counters_.points_expired.fetch_add(delta.expired, std::memory_order_relaxed);
  counters_.deletes_missed.fetch_add(delta.missing_deletes, std::memory_order_relaxed);
  counters_.inserts.fetch_add(batch.inserts.empty() ? 0 : 1, std::memory_order_relaxed);
  counters_.points_inserted.fetch_add(delta.inserted, std::memory_order_relaxed);
  counters_.stream_entered.fetch_add(delta.entered.size(), std::memory_order_relaxed);
  counters_.stream_left.fetch_add(delta.left.size(), std::memory_order_relaxed);

  const EngineSnapshotPtr published = next;
  set_snapshot(std::move(next));
  purge_derived_state(published);
  // Fan out AFTER the snapshot swap, still under write_mutex_: subscribers
  // see versions in publication order, and a subscriber that registered
  // between the swap and this point drops the delta as covered by its base.
  publish_delta(delta);
  return ApplyResult{published, std::move(delta)};
}

StreamSubscriptionPtr QueryEngine::subscribe() {
  for (int attempt = 0; attempt < 3; ++attempt) {
    {
      // Registration and base-snapshot read happen under subs_mutex_ so the
      // handoff with publish_delta (which holds it while fanning out) is
      // gapless: either the base snapshot already covers a delta, or the
      // registered subscription receives it.
      std::lock_guard<std::mutex> lock(subs_mutex_);
      const EngineSnapshotPtr snap = snapshot();
      if (snap->full_skyline != nullptr) {
        auto sub = std::make_shared<StreamSubscription>(snap->version, snap->full_skyline,
                                                        options_.subscription_queue_capacity);
        subs_.push_back(sub);
        return sub;
      }
    }
    // No skyline resident yet: run one (caches + publishes it), then retry.
    (void)execute(Query{SkylineQuery{}});
  }
  // A writer raced every retry. Compute the base directly from a pinned
  // snapshot — exact for that version, and deltas take over from there.
  std::lock_guard<std::mutex> lock(subs_mutex_);
  const EngineSnapshotPtr snap = snapshot();
  std::shared_ptr<const data::PointSet> base = snap->full_skyline;
  if (base == nullptr) {
    base = std::make_shared<const data::PointSet>(
        canonical_by_id(skyline::bnl_skyline(*snap->dataset)));
  }
  auto sub = std::make_shared<StreamSubscription>(snap->version, std::move(base),
                                                  options_.subscription_queue_capacity);
  subs_.push_back(sub);
  return sub;
}

std::uint64_t QueryEngine::tick() const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return tick_;
}

}  // namespace mrsky::service
