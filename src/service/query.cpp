#include "src/service/query.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace mrsky::service {

namespace {

/// Exact, locale-independent double encoding: 16 hex digits of the bit
/// pattern. Decimal formatting would round — two distinct weights could
/// collide on one cache key.
std::string hex_bits(double v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

std::string query_kind(const Query& query) {
  return std::visit(
      Overloaded{[](const SkylineQuery&) { return std::string("skyline"); },
                 [](const SubspaceQuery&) { return std::string("subspace"); },
                 [](const KSkybandQuery&) { return std::string("k_skyband"); },
                 [](const RepresentativeQuery&) { return std::string("representative"); },
                 [](const TopKWeightedQuery&) { return std::string("top_k_weighted"); }},
      query);
}

std::string query_signature(const Query& query) {
  return std::visit(
      Overloaded{
          [](const SkylineQuery&) { return std::string("skyline"); },
          [](const SubspaceQuery& q) {
            std::string sig = "subspace:";
            for (std::size_t i = 0; i < q.attributes.size(); ++i) {
              if (i > 0) sig += ',';
              sig += std::to_string(q.attributes[i]);
            }
            return sig;
          },
          [](const KSkybandQuery& q) { return "k_skyband:" + std::to_string(q.k); },
          [](const RepresentativeQuery& q) {
            return "representative:" + std::to_string(q.k);
          },
          [](const TopKWeightedQuery& q) {
            std::string sig = "top_k_weighted:" + std::to_string(q.k) + ":";
            for (std::size_t i = 0; i < q.weights.size(); ++i) {
              if (i > 0) sig += ',';
              sig += hex_bits(q.weights[i]);
            }
            return sig;
          }},
      query);
}

std::vector<std::string> validate_query(const Query& query, std::size_t dim) {
  std::vector<std::string> errors;
  std::visit(Overloaded{
                 [](const SkylineQuery&) {},
                 [&](const SubspaceQuery& q) {
                   if (q.attributes.empty()) {
                     errors.emplace_back("subspace: needs at least one attribute");
                   }
                   for (std::size_t a : q.attributes) {
                     if (a >= dim) {
                       errors.push_back("subspace: attribute " + std::to_string(a) +
                                        " out of range (dataset has " + std::to_string(dim) +
                                        " attributes)");
                     }
                   }
                 },
                 [&](const KSkybandQuery& q) {
                   if (q.k < 1) errors.emplace_back("k_skyband: k must be >= 1");
                 },
                 [&](const RepresentativeQuery& q) {
                   if (q.k < 1) errors.emplace_back("representative: k must be >= 1");
                 },
                 [&](const TopKWeightedQuery& q) {
                   if (q.k < 1) errors.emplace_back("top_k_weighted: k must be >= 1");
                   if (q.weights.size() != dim) {
                     errors.push_back("top_k_weighted: " + std::to_string(q.weights.size()) +
                                      " weights for " + std::to_string(dim) + " attributes");
                   }
                   for (double w : q.weights) {
                     if (!(w >= 0.0)) {
                       errors.emplace_back("top_k_weighted: weights must be non-negative");
                       break;
                     }
                   }
                   // A +inf weight slips past the sign check but poisons every
                   // score (inf * 0 = nan); reject it here so the API path is
                   // as strict as the script parser.
                   for (double w : q.weights) {
                     if (!std::isfinite(w)) {
                       errors.emplace_back("top_k_weighted: weights must be finite");
                       break;
                     }
                   }
                 }},
             query);
  return errors;
}

}  // namespace mrsky::service
