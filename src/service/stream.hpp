// Streaming-mutation types for the QueryEngine (ISSUE 9).
//
// A MutationBatch is one logical tick of a data stream: deletions, TTL'd
// insertions, and (engine-side) window evictions, applied atomically under
// the engine's writer lock and published as one new MVCC snapshot. Each
// published version carries a StreamDelta — the exact entered/left diff of
// the full skyline between the previous version and this one — which is what
// a standing subscription replays: starting from the base snapshot's skyline
// and applying deltas in version order reproduces every published skyline
// bitwise.
//
// Time is logical: the engine's tick advances by exactly one per apply_batch
// call, never by wall clock, so TTL expiry is deterministic — the oracle
// suite replays schedules and compares against recompute-from-scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/sync.hpp"
#include "src/dataset/point_set.hpp"

namespace mrsky::service {

/// One tick's worth of stream mutations. Order of application within the
/// tick: TTL expiry (of previously inserted points) → explicit deletes →
/// inserts → window eviction. Incoming point ids are ignored (the engine
/// assigns fresh ids, as insert_batch does); deletes address engine ids.
struct MutationBatch {
  /// Points to insert this tick (may be empty). Dimension must match the
  /// resident dataset when non-empty.
  data::PointSet inserts{1};

  /// Optional per-point time-to-live in ticks, parallel to `inserts` (empty =
  /// engine default for every point; otherwise one entry per inserted point,
  /// <= 0 meaning the engine default). A point with effective TTL k inserted
  /// at tick T expires at the start of tick T + k; effective TTL 0 = never.
  std::vector<std::int64_t> ttl_ticks;

  /// Engine-assigned ids to delete this tick. Unknown ids are counted in
  /// StreamDelta::missing_deletes, not errors — under concurrency a client
  /// may race another session's expiry.
  std::vector<data::PointId> deletes;
};

/// The skyline diff one apply_batch published, keyed by the version it
/// created. `entered` and `left` are relative to the PREVIOUS version's full
/// skyline; both are in ascending-id order.
struct StreamDelta {
  std::uint64_t version = 0;
  std::uint64_t tick = 0;
  /// Points that joined the skyline at `version` (with coordinates — enough
  /// for a subscriber to maintain its replica without a second query).
  data::PointSet entered{1};
  /// Ids that left the skyline at `version` (deleted, expired, or demoted).
  std::vector<data::PointId> left;
  /// Tick totals for observability.
  std::size_t inserted = 0;
  std::size_t deleted = 0;
  std::size_t expired = 0;  ///< TTL expiries + count-window evictions
  std::size_t missing_deletes = 0;
};

/// A standing continuous-skyline query. Created by QueryEngine::subscribe():
/// carries the base snapshot's version and full skyline (the starting
/// replica) plus a bounded queue of deltas for every version published after
/// the base. The handoff is gapless — a delta is either covered by the base
/// skyline (version <= base) or delivered — and delivery is in version order.
///
/// Consumer contract: replay deltas onto base_skyline() in arrival order. If
/// lagged() ever reads true the queue overflowed and the replica has a gap —
/// resubscribe from a fresh snapshot. next() returning nullopt after
/// closed() means the engine shut down (backlog already drained).
class StreamSubscription {
 public:
  StreamSubscription(std::uint64_t base_version,
                     std::shared_ptr<const data::PointSet> base_skyline,
                     std::size_t queue_capacity)
      : base_version_(base_version),
        base_skyline_(std::move(base_skyline)),
        queue_(queue_capacity) {}

  [[nodiscard]] std::uint64_t base_version() const noexcept { return base_version_; }
  [[nodiscard]] const data::PointSet& base_skyline() const noexcept { return *base_skyline_; }
  [[nodiscard]] std::shared_ptr<const data::PointSet> base_skyline_ptr() const noexcept {
    return base_skyline_;
  }

  /// Next delta, waiting up to `timeout_ms` (0 = poll, < 0 = forever).
  [[nodiscard]] std::optional<StreamDelta> next(std::int64_t timeout_ms) {
    return queue_.pop(timeout_ms);
  }

  /// Stops delivery (idempotent). Queued deltas stay poppable.
  void close() { queue_.close(); }
  [[nodiscard]] bool closed() const { return queue_.closed(); }
  [[nodiscard]] bool lagged() const { return queue_.lagged(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Engine-side delivery. Deltas at or before the base version are already
  /// part of the base skyline and are dropped — this is what makes the
  /// register-then-read handoff race-free in both interleavings.
  bool publish(const StreamDelta& delta) {
    if (delta.version <= base_version_) return true;
    return queue_.push(delta);
  }

 private:
  std::uint64_t base_version_;
  std::shared_ptr<const data::PointSet> base_skyline_;
  common::NotifyQueue<StreamDelta> queue_;
};

using StreamSubscriptionPtr = std::shared_ptr<StreamSubscription>;

}  // namespace mrsky::service
