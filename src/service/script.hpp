// Query-script parsing for the `mrsky query` subcommand.
//
// A script drives a QueryEngine session: one command per line, executed in
// order against the resident dataset. Grammar (whitespace-separated; blank
// lines and `#` comments ignored):
//
//   skyline                      full skyline
//   subspace 0,2,3               skyline over an attribute subset
//   skyband 3                    3-skyband
//   representative 5             5 greedy max-coverage representatives
//   topk 10 0.25,0.25,0.5        best 10 by weighted sum (one weight/attr)
//   insert extra.csv             insert_batch from a CSV / .mrsk file
//   delete 3,17,42               delete points by engine id (one tick)
//
// Parsing follows the library's all-errors validation style: every malformed
// line is collected and reported in ONE mrsky::InvalidArgument, with line
// numbers, instead of failing on the first typo.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "src/service/query.hpp"

namespace mrsky::service {

/// `insert <path>`: load the file and insert_batch it. Relative paths are
/// resolved against `base_dir` at parse time (parse_query_script_file passes
/// the script's own directory, so `insert extra.csv` means "next to the
/// script", not "wherever the process happens to run"); absolute paths pass
/// through untouched.
struct InsertCommand {
  std::string path;
};

/// `delete <id,id,...>`: apply_batch one tick deleting those engine ids
/// (unknown ids count as missing in the delta, not errors).
struct DeleteCommand {
  std::vector<data::PointId> ids;
};

using ScriptCommand = std::variant<Query, InsertCommand, DeleteCommand>;

/// Parses a whole script. Relative insert paths are resolved against
/// `base_dir` (empty = leave them as written). Throws mrsky::InvalidArgument
/// listing every bad line at once — including non-finite top-k weights, which
/// parse as doubles but can never score a point. Note this is otherwise a
/// *syntax* pass — semantic validation against the dataset (attribute ranges,
/// weight counts) happens in QueryEngine::execute via validate_query.
[[nodiscard]] std::vector<ScriptCommand> parse_query_script(std::istream& in,
                                                            const std::string& base_dir = "");

/// Reads and parses `path`, resolving relative insert paths against the
/// script file's directory; throws mrsky::RuntimeError if unreadable.
[[nodiscard]] std::vector<ScriptCommand> parse_query_script_file(const std::string& path);

}  // namespace mrsky::service
