// Query-script parsing for the `mrsky query` subcommand.
//
// A script drives a QueryEngine session: one command per line, executed in
// order against the resident dataset. Grammar (whitespace-separated; blank
// lines and `#` comments ignored):
//
//   skyline                      full skyline
//   subspace 0,2,3               skyline over an attribute subset
//   skyband 3                    3-skyband
//   representative 5             5 greedy max-coverage representatives
//   topk 10 0.25,0.25,0.5        best 10 by weighted sum (one weight/attr)
//   insert extra.csv             insert_batch from a CSV / .mrsk file
//
// Parsing follows the library's all-errors validation style: every malformed
// line is collected and reported in ONE mrsky::InvalidArgument, with line
// numbers, instead of failing on the first typo.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "src/service/query.hpp"

namespace mrsky::service {

/// `insert <path>`: load the file and insert_batch it. Path resolution is the
/// caller's business (the CLI resolves relative to the working directory).
struct InsertCommand {
  std::string path;
};

using ScriptCommand = std::variant<Query, InsertCommand>;

/// Parses a whole script. Throws mrsky::InvalidArgument listing every bad
/// line at once. Note this is a *syntax* pass — semantic validation against
/// the dataset (attribute ranges, weight counts) happens in
/// QueryEngine::execute via validate_query.
[[nodiscard]] std::vector<ScriptCommand> parse_query_script(std::istream& in);

/// Reads and parses `path`; throws mrsky::RuntimeError if unreadable.
[[nodiscard]] std::vector<ScriptCommand> parse_query_script_file(const std::string& path);

}  // namespace mrsky::service
