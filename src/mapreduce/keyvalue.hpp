// Typed key/value records and the per-task context the engine hands to user
// map/combine/reduce functions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mrsky::mr {

template <typename K, typename V>
struct KV {
  K key;
  V value;
};

/// Collects the records a map/combine/reduce function emits.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) { records_.push_back(KV<K, V>{std::move(key), std::move(value)}); }

  [[nodiscard]] std::size_t count() const noexcept { return records_.size(); }

  /// Transfers the collected records out (emitter becomes empty).
  [[nodiscard]] std::vector<KV<K, V>> take() { return std::exchange(records_, {}); }

 private:
  std::vector<KV<K, V>> records_;
};

/// Cost-accounting handle. User functions charge the abstract work they do
/// (dominance tests, for the skyline jobs); the cluster simulator turns the
/// total into simulated seconds. Real elapsed time is measured separately by
/// the engine, so charging work is only needed for simulation fidelity.
class TaskContext {
 public:
  void charge_work(std::uint64_t units) noexcept { work_units_ += units; }
  [[nodiscard]] std::uint64_t work_units() const noexcept { return work_units_; }

  /// Hadoop-style named counter, aggregated per job in JobMetrics. Each task
  /// owns its context, so incrementing is race-free even under kThreads.
  void increment(const std::string& counter, std::uint64_t delta = 1) {
    counters_[counter] += delta;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }

 private:
  std::uint64_t work_units_ = 0;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mrsky::mr
