// The MapReduce job engine.
//
// A faithful miniature of the Hadoop execution model the paper ran on:
//
//   input splits ──map──▶ (combine) ──shuffle/sort──▶ reduce ──▶ output
//
// * Input is split into `num_map_tasks` contiguous splits (HDFS blocks).
//   Input is read through a lightweight view (`size()`/`key(i)`/`value(i)`),
//   so callers can run jobs directly over columnar storage (e.g. a PointSet)
//   without materialising a vector<KV> copy; `std::vector<KV>` still works
//   out of the box.
// * Each map task applies `map_fn` per record, then — if a combiner is
//   configured — groups its own output by key and applies `combine_fn`
//   (Hadoop's map-side combine; its cost is charged to the map task), and
//   finally scatters its records into per-reduce-task shards (the map-side
//   partitioning Hadoop performs when writing spill files). `partition_fn`
//   therefore runs inside map tasks and must be pure/thread-safe.
// * The shuffle concatenates, per reduce bucket and in map-task order, the
//   shards every map task produced, then sorts each bucket by key
//   (sort-merge grouping, requires operator< on the mid key). Both the
//   scatter and the concatenation run in parallel under kThreads; the time
//   spent building buckets is recorded as JobMetrics::shuffle_ns.
// * Each reduce task applies `reduce_fn` once per key group.
//
// Execution is sequential or thread-pooled (ExecutionMode). Under kThreads
// the engine either borrows the caller's persistent RunOptions::pool (reused
// across jobs — run_mr_skyline threads one pool through job 1 and every
// merge round) or creates one private pool per engine call, never one per
// phase. Results and metrics are identical in both modes — bitwise, except
// for the measured wall-clock fields (TaskMetrics::wall_ns,
// JobMetrics::shuffle_ns) — because tasks are pure, shuffle metrics are
// summed in task order, and outputs are gathered in task order, never
// completion order. The cluster *simulation* (cluster.hpp) is a separate
// concern that consumes the metrics afterwards — so experiments are
// reproducible on any host, including this repository's single-core CI.
//
// Fault tolerance mirrors Hadoop 0.20's task model: attempts can fail
// mid-task (deterministically injected via RunOptions), discarding their
// partial output and re-executing from the split, and user functions that
// throw on a record either exhaust the task's attempts (job abort) or — in
// skip-bad-records mode — get the offending records isolated. Everything
// failure handling costs is measured into TaskMetrics / FailureReport; the
// node-loss dimension (a dead server taking completed map outputs with it)
// lives in the cluster simulator.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/common/trace.hpp"
#include "src/mapreduce/keyvalue.hpp"
#include "src/mapreduce/metrics.hpp"

namespace mrsky::mr {

enum class ExecutionMode { kSequential, kThreads };

struct RunOptions {
  ExecutionMode mode = ExecutionMode::kSequential;
  /// Worker count for kThreads; 0 means hardware concurrency. Ignored when
  /// `pool` is set (the pool's size wins).
  std::size_t num_threads = 0;

  /// Optional caller-owned persistent pool for kThreads. When set, every
  /// engine call runs on it and no pool is constructed internally — the way
  /// to amortise thread start-up across a multi-job pipeline. The pool must
  /// outlive every engine call that uses these options. When null, each
  /// run_job/run_map_only call creates one private pool for its duration.
  common::ThreadPool* pool = nullptr;

  /// Fault injection: probability that any task attempt fails and is retried
  /// (Hadoop task-retry semantics). Whether an attempt fails — and how far
  /// into the task it gets — is a deterministic hash of (job name, phase,
  /// task index, attempt, failure_seed), so runs are reproducible and
  /// identical under kSequential and kThreads. A failing attempt really
  /// executes a prefix of its records, then dies mid-task: its partial
  /// emitter/shard output is discarded and the task re-executes from its
  /// split. The lost prefix is measured, not imputed — see
  /// TaskMetrics::wasted_records / wasted_work_units and
  /// JobMetrics::failure_report(); the cluster simulator charges it.
  /// 0 disables injection.
  double task_failure_probability = 0.0;
  /// Attempts per task before the whole job aborts (mapred.*.max.attempts).
  std::size_t max_task_attempts = 4;
  std::uint64_t failure_seed = 0xFA11;

  /// Hadoop's skip-bad-records mode (mapred.skip.*): a map/reduce function
  /// throwing on a record fails the attempt once, then re-executions isolate
  /// throwing records in place instead of aborting the job; isolated records
  /// are counted in TaskMetrics::records_skipped. Without it, a throwing
  /// record deterministically fails every attempt, so the job aborts once
  /// max_task_attempts is exhausted (Hadoop's default behaviour).
  bool skip_bad_records = false;
  /// Abort anyway once a single task isolates more than this many records —
  /// mass skipping means the input, not single records, is broken.
  std::size_t max_skipped_records = 16;

  /// Span-level tracing (src/common/trace.hpp). When set, the engine records
  /// a span per job, per task, per task attempt (failed attempts included,
  /// with `attempt`/`wasted_records` args) and per shuffle bucket into the
  /// recorder, which must outlive every engine call using these options.
  /// Null (the default) disables tracing at zero cost: every instrumentation
  /// site is a single pointer test.
  common::TraceRecorder* trace = nullptr;

  /// Shuffle spill budget in bytes; 0 disables spilling. When a job also
  /// supplies a JobConfig::spill_codec, a map task whose scattered shard
  /// volume projects the job past this budget (task bytes × map tasks >
  /// budget — a per-task-local, scheduling-independent test) writes its
  /// shards to a temporary spill file and frees them; the shuffle streams
  /// each bucket's records back in map-task order. Output content and order
  /// are exactly what the in-memory shuffle produces — spilling is purely a
  /// memory/IO trade, accounted in JobMetrics::shuffle_spilled_bytes /
  /// shuffle_spill_files.
  std::uint64_t shuffle_spill_bytes = 0;
  /// Directory for spill files; empty = std::filesystem::temp_directory_path().
  std::string spill_dir;

  /// Cooperative cancellation/deadline (ISSUE 7). Task loops poll the token
  /// at split boundaries — every phase entry, every shuffle bucket, and every
  /// kCancelPollStride input units inside a task attempt — and abort the job
  /// with mrsky::QueryCancelled when it signals. The partial output of a
  /// cancelled job is discarded by unwinding; nothing is committed. The
  /// default token is inert, so batch/CLI callers pay one pointer test per
  /// poll site.
  common::CancellationToken cancel;
};

/// How many input units a task attempt executes between cancellation polls.
/// An armed poll is two atomic loads plus a steady_clock read (~tens of ns),
/// so striding keeps the overhead invisible even for trivial map functions
/// while still bounding cancellation latency to a few thousand records.
inline constexpr std::size_t kCancelPollStride = 1024;

namespace detail {

/// Deterministic attempt-failure decision (splitmix-style avalanche).
inline bool attempt_fails(const RunOptions& opts, const std::string& job, int phase,
                          std::size_t task, std::size_t attempt) {
  if (opts.task_failure_probability <= 0.0) return false;
  std::uint64_t h = opts.failure_seed ^ (0x9e3779b97f4a7c15ULL * (task + 1));
  for (char c : job) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h ^= static_cast<std::uint64_t>(phase) << 32;
  h ^= attempt * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < opts.task_failure_probability;
}

/// Any fault-handling feature on? Off means the zero-overhead happy path.
inline bool faults_enabled(const RunOptions& opts) noexcept {
  return opts.task_failure_probability > 0.0 || opts.skip_bad_records;
}

/// Deterministic mid-task failure point: how many of its `executable` input
/// units a failing attempt completes before it dies. An independent hash
/// stream from attempt_fails (different salt and finalizer), so the failure
/// offset is not correlated with the failure decision.
inline std::uint64_t failure_prefix(const RunOptions& opts, const std::string& job, int phase,
                                    std::size_t task, std::uint64_t attempt,
                                    std::uint64_t executable) {
  if (executable == 0) return 0;
  std::uint64_t h = (opts.failure_seed + 0x0FF5E7u) ^ (0xc2b2ae3d27d4eb4fULL * (task + 1));
  for (char c : job) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h ^= static_cast<std::uint64_t>(phase) << 32;
  h ^= (attempt + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const auto prefix = static_cast<std::uint64_t>(u * static_cast<double>(executable));
  return std::min(prefix, executable - 1);  // a failing attempt never finishes
}

/// What one task's attempt loop reports back to its phase.
struct TaskAttemptOutcome {
  std::uint64_t attempts = 1;
  std::uint64_t records_skipped = 0;
  std::uint64_t wasted_records = 0;
  std::uint64_t wasted_work_units = 0;
  std::vector<TaskFailureEvent> events;
};

/// Shared attempt loop for all three phases (map-only, map and reduce of the
/// full engine). Runs a task body of `num_units` input units under the fault
/// policy in RunOptions and returns what failure handling cost.
///
/// `reset()` must discard any partial output of the previous attempt (fresh
/// emitter). `process(i, ctx, may_fail)` must execute input unit i (a map
/// record, or a reduce key group) and return how many input records the unit
/// consumed; `may_fail` is true while the attempt can still be discarded, so
/// bodies that consume their input destructively (the reduce value move)
/// must work on copies until it turns false.
///
/// Failure semantics (the Hadoop 0.20 task model):
/// * An injected failing attempt executes a deterministic prefix of its
///   units (failure_prefix), then dies mid-task; reset() discards its
///   partial output, its consumed records/work are added to the wasted
///   counters, and the task re-executes from its input.
/// * A user function throwing marks the unit bad. Without skip_bad_records
///   the attempt fails and the deterministic re-throw exhausts
///   max_task_attempts — job abort, Hadoop's default. With it, the first
///   throw fails the attempt and arms skipping mode; re-executions isolate
///   throwing units in place (counted in records_skipped, capped by
///   max_skipped_records) and the job completes without them.
template <typename ResetFn, typename ProcessFn>
TaskAttemptOutcome run_task_attempts(const RunOptions& opts, const std::string& job, int phase,
                                     std::size_t task, std::size_t num_units,
                                     TaskContext& final_ctx, const ResetFn& reset,
                                     const ProcessFn& process) {
  TaskAttemptOutcome outcome;
  const char* phase_name = phase == 0 ? "map" : "reduce";
  const char* poll_site = phase == 0 ? "map task" : "reduce task";
  if (!faults_enabled(opts)) {
    common::ScopedSpan span(opts.trace, "attempt", "attempt");
    span.arg("attempt", 0);
    TaskContext ctx;
    for (std::size_t i = 0; i < num_units; ++i) {
      if (i % kCancelPollStride == 0) opts.cancel.throw_if_stopped(poll_site);
      process(i, ctx, /*may_fail=*/false);
    }
    span.arg("status", "ok");
    final_ctx = std::move(ctx);
    return outcome;
  }
  std::vector<std::size_t> skipped;  // sorted unit indices isolated as bad
  bool skipping = false;             // armed by the first bad record
  for (std::uint64_t attempt = 0;; ++attempt) {
    if (attempt >= opts.max_task_attempts) {
      MRSKY_FAIL(std::string(phase_name) + " task " + std::to_string(task) + " of job '" + job +
                 "' failed " + std::to_string(opts.max_task_attempts) + " attempts");
    }
    const bool injected = attempt_fails(opts, job, phase, task, attempt);
    const std::uint64_t executable = num_units - skipped.size();
    const std::uint64_t limit =
        injected ? failure_prefix(opts, job, phase, task, attempt, executable) : executable;
    common::ScopedSpan span(opts.trace, "attempt", "attempt");
    span.arg("attempt", attempt);
    reset();
    TaskContext ctx;
    // Discardable until neither an injected crash nor a first bad record can
    // fail it any more.
    const bool may_fail = injected || (opts.skip_bad_records && !skipping);
    std::uint64_t units_done = 0;
    std::uint64_t records_done = 0;
    bool failed = false;
    for (std::size_t i = 0; i < num_units && !failed; ++i) {
      // Cancellation is polled OUTSIDE the try below: a stopping query must
      // abort the job, never be mistaken for a bad record and skipped.
      if (i % kCancelPollStride == 0) opts.cancel.throw_if_stopped(poll_site);
      if (!skipped.empty() && std::binary_search(skipped.begin(), skipped.end(), i)) continue;
      if (injected && units_done >= limit) {
        outcome.events.push_back(TaskFailureEvent{static_cast<std::uint32_t>(phase), task,
                                                  attempt, records_done, ctx.work_units(),
                                                  /*injected=*/true, 0});
        failed = true;
        break;
      }
      try {
        records_done += process(i, ctx, may_fail);
        ++units_done;
      } catch (const QueryCancelled&) {
        // A user function (or nested engine call) observed the stop signal:
        // propagate the typed abort instead of treating it as a bad record.
        throw;
      } catch (const std::exception& e) {
        if (opts.skip_bad_records) {
          if (skipped.size() >= opts.max_skipped_records) {
            MRSKY_FAIL(std::string(phase_name) + " task " + std::to_string(task) + " of job '" +
                       job + "' exceeded max_skipped_records = " +
                       std::to_string(opts.max_skipped_records) + " (last bad record: " +
                       e.what() + ")");
          }
          skipped.insert(std::lower_bound(skipped.begin(), skipped.end(), i), i);
          outcome.events.push_back(TaskFailureEvent{static_cast<std::uint32_t>(phase), task,
                                                    attempt, records_done,
                                                    skipping ? 0 : ctx.work_units(),
                                                    /*injected=*/false, i});
          if (!skipping) {
            // First bad record: Hadoop fails the attempt and re-runs the
            // task in skipping mode; later throws are isolated in place.
            skipping = true;
            failed = true;
          }
        } else {
          outcome.events.push_back(TaskFailureEvent{static_cast<std::uint32_t>(phase), task,
                                                    attempt, records_done, ctx.work_units(),
                                                    /*injected=*/false, i});
          failed = true;
        }
      }
    }
    if (injected && !failed) {
      // Nothing left to execute before the crash point (e.g. every unit was
      // isolated): the attempt still dies before committing its output.
      outcome.events.push_back(TaskFailureEvent{static_cast<std::uint32_t>(phase), task, attempt,
                                                records_done, ctx.work_units(),
                                                /*injected=*/true, 0});
      failed = true;
    }
    if (failed) {
      outcome.wasted_records += records_done;
      outcome.wasted_work_units += ctx.work_units();
      span.arg("status", "failed");
      span.arg("injected", injected ? 1 : 0);
      span.arg("wasted_records", records_done);
      span.arg("wasted_work_units", ctx.work_units());
      continue;  // re-execute from the split
    }
    outcome.attempts = attempt + 1;
    outcome.records_skipped = skipped.size();
    span.arg("status", "ok");
    span.arg("records", records_done);
    if (!skipped.empty()) span.arg("records_skipped", skipped.size());
    final_ctx = std::move(ctx);
    return outcome;
  }
}

/// The pool one engine call runs on: the caller's persistent RunOptions::pool
/// when provided, else a private pool created once per call (not once per
/// phase) and destroyed on return. Sequential mode never creates a pool and
/// get() returns nullptr.
class EnginePool {
 public:
  explicit EnginePool(const RunOptions& opts) {
    if (opts.mode != ExecutionMode::kThreads) return;
    if (opts.pool != nullptr) {
      pool_ = opts.pool;
      return;
    }
    const std::size_t threads =
        opts.num_threads == 0 ? common::ThreadPool::default_concurrency() : opts.num_threads;
    owned_ = std::make_unique<common::ThreadPool>(threads);
    pool_ = owned_.get();
  }

  [[nodiscard]] common::ThreadPool* get() const noexcept { return pool_; }

 private:
  common::ThreadPool* pool_ = nullptr;
  std::unique_ptr<common::ThreadPool> owned_;
};

}  // namespace detail

/// The minimal read-only record-sequence interface the engine consumes:
/// `size()`, plus `key(i)`/`value(i)` whose results bind to the map
/// function's `const InK&`/`const InV&` parameters.
template <typename Input>
concept JobInput = requires(const Input& in, std::size_t i) {
  { in.size() } -> std::convertible_to<std::size_t>;
  in.key(i);
  in.value(i);
};

/// Adapts the classic vector-of-records input to the view interface.
template <typename K, typename V>
struct VectorInput {
  const std::vector<KV<K, V>>* records;

  [[nodiscard]] std::size_t size() const noexcept { return records->size(); }
  [[nodiscard]] const K& key(std::size_t i) const noexcept { return (*records)[i].key; }
  [[nodiscard]] const V& value(std::size_t i) const noexcept { return (*records)[i].value; }
};

template <typename InK, typename InV, typename MidK, typename MidV, typename OutK,
          typename OutV>
struct JobConfig {
  std::string name = "job";
  std::size_t num_map_tasks = 1;
  std::size_t num_reduce_tasks = 1;

  using MapFn = std::function<void(const InK&, const InV&, Emitter<MidK, MidV>&, TaskContext&)>;
  using CombineFn =
      std::function<void(const MidK&, std::vector<MidV>&, Emitter<MidK, MidV>&, TaskContext&)>;
  using ReduceFn =
      std::function<void(const MidK&, std::vector<MidV>&, Emitter<OutK, OutV>&, TaskContext&)>;
  using PartitionFn = std::function<std::size_t(const MidK&, std::size_t)>;
  using ValueBytesFn = std::function<std::size_t(const MidV&)>;

  MapFn map_fn;
  CombineFn combine_fn;  ///< optional map-side combine
  ReduceFn reduce_fn;
  /// Routes a mid key to a reduce bucket; default std::hash(key) % buckets.
  /// Runs inside map tasks, so it must be pure and thread-safe.
  PartitionFn partition_fn;
  /// Approximate payload size of a shuffled value; default sizeof(MidV).
  ValueBytesFn value_bytes_fn;

  /// Serializer pair for mid records, enabling shuffle spill under
  /// RunOptions::shuffle_spill_bytes. `read` must be the exact inverse of
  /// `write` (the engine round-trips records through it verbatim). Jobs
  /// without a codec never spill, whatever the budget.
  struct SpillCodec {
    std::function<void(std::ostream&, const KV<MidK, MidV>&)> write;
    std::function<KV<MidK, MidV>(std::istream&)> read;
  };
  SpillCodec spill_codec;
};

template <typename OutK, typename OutV>
struct JobResult {
  std::vector<KV<OutK, OutV>> output;
  JobMetrics metrics;
};

namespace detail {

/// Sorts records by key and invokes `fn(key, values)` per key group,
/// consuming the records. Requires operator< on K.
template <typename K, typename V, typename Fn>
void group_by_key(std::vector<KV<K, V>>& records, Fn&& fn) {
  std::stable_sort(records.begin(), records.end(),
                   [](const KV<K, V>& a, const KV<K, V>& b) { return a.key < b.key; });
  std::size_t i = 0;
  while (i < records.size()) {
    std::size_t j = i + 1;
    while (j < records.size() && !(records[i].key < records[j].key)) ++j;
    std::vector<V> values;
    values.reserve(j - i);
    for (std::size_t r = i; r < j; ++r) values.push_back(std::move(records[r].value));
    fn(records[i].key, values);
    i = j;
  }
}

/// Evenly-sized contiguous split boundaries: returns num_splits+1 offsets
/// with offsets[s] = floor(n * s / num_splits), computed incrementally so the
/// n * s product (which overflows std::size_t for very large inputs) never
/// materialises. `acc` tracks (s * remainder) mod num_splits; each wrap of
/// the accumulator is exactly one floor increment, so the boundaries are
/// bit-identical to the direct formula.
inline std::vector<std::size_t> split_offsets(std::size_t n, std::size_t num_splits) {
  std::vector<std::size_t> offsets(num_splits + 1, 0);
  const std::size_t base = n / num_splits;
  const std::size_t rem = n % num_splits;
  std::size_t acc = 0;
  for (std::size_t s = 1; s <= num_splits; ++s) {
    acc += rem;
    std::size_t extra = 0;
    if (acc >= num_splits) {
      acc -= num_splits;
      extra = 1;
    }
    offsets[s] = offsets[s - 1] + base + extra;
  }
  return offsets;
}

/// Runs `fn(i)` for i in [0, count), on `pool` when given, else inline.
inline void for_each_task(std::size_t count, common::ThreadPool* pool,
                          const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->parallel_for(count, fn);
}

}  // namespace detail

/// A reduce-less job (Hadoop's numReduceTasks = 0): map output is the job
/// output, no shuffle, no sort. Used for pure transform/filter passes.
template <typename InK, typename InV, typename OutK, typename OutV>
struct MapOnlyConfig {
  std::string name = "map-only";
  std::size_t num_map_tasks = 1;
  std::function<void(const InK&, const InV&, Emitter<OutK, OutV>&, TaskContext&)> map_fn;
};

/// Executes a map-only job over any JobInput view: per-task metrics are
/// recorded exactly as in the full engine (including fault-injection
/// retries); shuffle counters stay 0.
template <typename InK, typename InV, typename OutK, typename OutV, JobInput Input>
JobResult<OutK, OutV> run_map_only(const MapOnlyConfig<InK, InV, OutK, OutV>& config,
                                   const Input& input, const RunOptions& opts = {}) {
  MRSKY_REQUIRE(static_cast<bool>(config.map_fn), "map-only job needs a map function");
  MRSKY_REQUIRE(config.num_map_tasks >= 1, "need at least one map task");

  JobResult<OutK, OutV> result;
  result.metrics.job_name = config.name;
  result.metrics.map_tasks.resize(config.num_map_tasks);

  common::ScopedSpan job_span(opts.trace, config.name, "job");
  job_span.arg("map_tasks", config.num_map_tasks);

  opts.cancel.throw_if_stopped("map-only job start");
  const detail::EnginePool pool(opts);
  const auto offsets = detail::split_offsets(input.size(), config.num_map_tasks);
  std::vector<std::vector<KV<OutK, OutV>>> outputs(config.num_map_tasks);
  detail::for_each_task(config.num_map_tasks, pool.get(), [&](std::size_t t) {
    common::ScopedSpan task_span(opts.trace, "map", "task");
    task_span.arg("job", config.name);
    task_span.arg("task", t);
    common::Timer timer;
    TaskContext ctx;
    Emitter<OutK, OutV> emitter;
    auto outcome = detail::run_task_attempts(
        opts, config.name, /*phase=*/0, t, offsets[t + 1] - offsets[t], ctx,
        [&emitter] { emitter = Emitter<OutK, OutV>{}; },
        [&](std::size_t i, TaskContext& attempt_ctx, bool /*may_fail*/) -> std::uint64_t {
          const std::size_t r = offsets[t] + i;
          config.map_fn(input.key(r), input.value(r), emitter, attempt_ctx);
          return 1;
        });
    outputs[t] = emitter.take();
    auto& m = result.metrics.map_tasks[t];
    m.records_in = offsets[t + 1] - offsets[t];
    m.records_out = outputs[t].size();
    m.work_units = ctx.work_units();
    m.wall_ns = timer.elapsed_ns();
    m.attempts = outcome.attempts;
    m.records_skipped = outcome.records_skipped;
    m.wasted_records = outcome.wasted_records;
    m.wasted_work_units = outcome.wasted_work_units;
    m.failure_events = std::move(outcome.events);
    m.counters = ctx.counters();
    task_span.arg("records_in", m.records_in);
    task_span.arg("records_out", m.records_out);
    task_span.arg("attempts", m.attempts);
    if (m.wasted_records > 0) task_span.arg("wasted_records", m.wasted_records);
  });

  std::size_t total_out = 0;
  for (const auto& out : outputs) total_out += out.size();
  result.output.reserve(total_out);
  for (auto& out : outputs) {
    result.output.insert(result.output.end(), std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
  }
  return result;
}

/// Executes a map-only job over an in-memory record vector.
template <typename InK, typename InV, typename OutK, typename OutV>
JobResult<OutK, OutV> run_map_only(const MapOnlyConfig<InK, InV, OutK, OutV>& config,
                                   const std::vector<KV<InK, InV>>& input,
                                   const RunOptions& opts = {}) {
  return run_map_only(config, VectorInput<InK, InV>{&input}, opts);
}

/// Executes one MapReduce job over any JobInput view. See file header for
/// the execution model. Throws mrsky::InvalidArgument on bad configuration
/// (including a partition_fn that returns an out-of-range bucket).
template <typename InK, typename InV, typename MidK, typename MidV, typename OutK,
          typename OutV, JobInput Input>
JobResult<OutK, OutV> run_job(const JobConfig<InK, InV, MidK, MidV, OutK, OutV>& config,
                              const Input& input, const RunOptions& opts = {}) {
  MRSKY_REQUIRE(static_cast<bool>(config.map_fn), "job needs a map function");
  MRSKY_REQUIRE(static_cast<bool>(config.reduce_fn), "job needs a reduce function");
  MRSKY_REQUIRE(config.num_map_tasks >= 1, "need at least one map task");
  MRSKY_REQUIRE(config.num_reduce_tasks >= 1, "need at least one reduce task");

  const std::size_t num_maps = config.num_map_tasks;
  const std::size_t num_reduces = config.num_reduce_tasks;

  JobResult<OutK, OutV> result;
  result.metrics.job_name = config.name;
  result.metrics.map_tasks.resize(num_maps);
  result.metrics.reduce_tasks.resize(num_reduces);

  common::ScopedSpan job_span(opts.trace, config.name, "job");
  job_span.arg("map_tasks", num_maps);
  job_span.arg("reduce_tasks", num_reduces);

  const auto partition_of = [&](const MidK& key) -> std::size_t {
    if (config.partition_fn) {
      const std::size_t p = config.partition_fn(key, num_reduces);
      // A user-supplied callback is a public-API boundary: validate even in
      // release builds, or the scatter below indexes out of bounds.
      MRSKY_REQUIRE(p < num_reduces, "partition_fn returned out-of-range bucket");
      return p;
    }
    return std::hash<MidK>{}(key) % num_reduces;
  };

  opts.cancel.throw_if_stopped("job start");
  const detail::EnginePool pool(opts);

  // ---- Map phase: map, optional combine, then scatter into per-reduce
  // shards (map-side partitioning). Shuffle metrics are tallied per task and
  // summed in task order below, keeping them independent of scheduling. ----
  const auto offsets = detail::split_offsets(input.size(), num_maps);
  std::vector<std::vector<std::vector<KV<MidK, MidV>>>> shards(num_maps);
  std::vector<std::uint64_t> task_shuffle_records(num_maps, 0);
  std::vector<std::uint64_t> task_shuffle_bytes(num_maps, 0);

  // ---- Shuffle spill bookkeeping (RunOptions::shuffle_spill_bytes). A map
  // task that spills records where each bucket's records start in its file;
  // the shuffle seeks straight to the span. ----
  const bool spill_enabled = opts.shuffle_spill_bytes > 0 &&
                             static_cast<bool>(config.spill_codec.write) &&
                             static_cast<bool>(config.spill_codec.read);
  struct SpillFile {
    std::string path;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> bucket_spans;  // offset, count
    std::uint64_t bytes = 0;
  };
  std::vector<SpillFile> spills(spill_enabled ? num_maps : 0);
  // Spill files are engine-internal temporaries: removed on every exit path,
  // cancellation unwinds included.
  struct SpillCleanup {
    std::vector<SpillFile>* files;
    ~SpillCleanup() {
      if (files == nullptr) return;
      for (const auto& f : *files) {
        if (!f.path.empty()) std::remove(f.path.c_str());
      }
    }
  } spill_cleanup{spill_enabled ? &spills : nullptr};

  detail::for_each_task(num_maps, pool.get(), [&](std::size_t t) {
    common::ScopedSpan task_span(opts.trace, "map", "task");
    task_span.arg("job", config.name);
    task_span.arg("task", t);
    common::Timer timer;
    TaskContext ctx;
    Emitter<MidK, MidV> emitter;
    // A failing attempt dies before combine/scatter, so discarding the
    // emitter (reset) is exactly the partial-output discard: nothing of a
    // lost attempt ever reaches the shards.
    auto outcome = detail::run_task_attempts(
        opts, config.name, /*phase=*/0, t, offsets[t + 1] - offsets[t], ctx,
        [&emitter] { emitter = Emitter<MidK, MidV>{}; },
        [&](std::size_t i, TaskContext& attempt_ctx, bool /*may_fail*/) -> std::uint64_t {
          const std::size_t r = offsets[t] + i;
          config.map_fn(input.key(r), input.value(r), emitter, attempt_ctx);
          return 1;
        });
    auto emitted = emitter.take();
    if (config.combine_fn) {
      common::ScopedSpan combine_span(opts.trace, "combine", "task");
      combine_span.arg("task", t);
      combine_span.arg("records_in", emitted.size());
      Emitter<MidK, MidV> combined;
      detail::group_by_key(emitted, [&](const MidK& key, std::vector<MidV>& values) {
        config.combine_fn(key, values, combined, ctx);
      });
      emitted = combined.take();
      combine_span.arg("records_out", emitted.size());
    }
    auto& m = result.metrics.map_tasks[t];
    m.records_in = offsets[t + 1] - offsets[t];
    m.records_out = emitted.size();
    auto& task_shards = shards[t];
    task_shards.resize(num_reduces);
    for (auto& record : emitted) {
      task_shuffle_records[t] += 1;
      task_shuffle_bytes[t] +=
          sizeof(MidK) +
          (config.value_bytes_fn ? config.value_bytes_fn(record.value) : sizeof(MidV));
      task_shards[partition_of(record.key)].push_back(std::move(record));
    }
    if (spill_enabled && task_shuffle_bytes[t] * num_maps > opts.shuffle_spill_bytes) {
      // This task's share projects the job past the budget: persist the
      // shards bucket-by-bucket and drop them from memory. The decision is a
      // pure function of the task's own output, so it is identical under
      // kSequential and kThreads.
      static std::atomic<std::uint64_t> spill_counter{0};
      const auto dir = opts.spill_dir.empty() ? std::filesystem::temp_directory_path()
                                              : std::filesystem::path(opts.spill_dir);
      auto& spill = spills[t];
      spill.path = (dir / ("mrsky-spill-" + std::to_string(::getpid()) + "-" +
                           std::to_string(spill_counter.fetch_add(
                               1, std::memory_order_relaxed)) +
                           "-" + std::to_string(t) + ".tmp"))
                       .string();
      std::ofstream out(spill.path, std::ios::binary | std::ios::trunc);
      if (!out) MRSKY_FAIL("cannot open shuffle spill file: " + spill.path);
      spill.bucket_spans.reserve(num_reduces);
      for (std::size_t b = 0; b < num_reduces; ++b) {
        spill.bucket_spans.emplace_back(static_cast<std::uint64_t>(out.tellp()),
                                        task_shards[b].size());
        for (const auto& record : task_shards[b]) config.spill_codec.write(out, record);
      }
      out.flush();
      if (!out) MRSKY_FAIL("shuffle spill write failed: " + spill.path);
      spill.bytes = static_cast<std::uint64_t>(out.tellp());
      std::vector<std::vector<KV<MidK, MidV>>>().swap(task_shards);
      common::ScopedSpan spill_span(opts.trace, "spill", "shuffle");
      spill_span.arg("task", t);
      spill_span.arg("bytes", spill.bytes);
    }
    m.work_units = ctx.work_units();
    m.wall_ns = timer.elapsed_ns();
    m.attempts = outcome.attempts;
    m.records_skipped = outcome.records_skipped;
    m.wasted_records = outcome.wasted_records;
    m.wasted_work_units = outcome.wasted_work_units;
    m.failure_events = std::move(outcome.events);
    m.counters = ctx.counters();
    task_span.arg("records_in", m.records_in);
    task_span.arg("records_out", m.records_out);
    task_span.arg("attempts", m.attempts);
    if (m.wasted_records > 0) task_span.arg("wasted_records", m.wasted_records);
  });
  for (std::size_t t = 0; t < num_maps; ++t) {
    result.metrics.shuffle_records += task_shuffle_records[t];
    result.metrics.shuffle_bytes += task_shuffle_bytes[t];
    if (spill_enabled && !spills[t].path.empty()) {
      result.metrics.shuffle_spilled_bytes += spills[t].bytes;
      result.metrics.shuffle_spill_files += 1;
    }
  }

  // ---- Shuffle: build each reduce bucket by concatenating the map tasks'
  // shards in map-task order — the exact sequence a sequential scatter
  // produces, so grouping and output stay identical across modes. With
  // spilling enabled the build is DEFERRED into each reduce task: a bucket is
  // streamed back from the spill files right before it is reduced and freed
  // right after, so peak shuffle memory is (worker lanes x one bucket), not
  // the whole dataset — which is the entire point of the spill budget. The
  // per-bucket record order is identical either way; only when memory is
  // reclaimed changes. ----
  common::Timer shuffle_timer;
  std::vector<std::vector<KV<MidK, MidV>>> buckets(num_reduces);
  const auto build_bucket = [&](std::size_t b) {
    opts.cancel.throw_if_stopped("shuffle bucket");
    common::ScopedSpan bucket_span(opts.trace, "shuffle-bucket", "shuffle");
    const auto task_spilled = [&](std::size_t t) {
      return spill_enabled && !spills[t].path.empty();
    };
    std::size_t total = 0;
    for (std::size_t t = 0; t < num_maps; ++t) {
      total += task_spilled(t) ? spills[t].bucket_spans[b].second : shards[t][b].size();
    }
    auto& bucket = buckets[b];
    bucket.reserve(total);
    for (std::size_t t = 0; t < num_maps; ++t) {
      if (task_spilled(t)) {
        // Stream the task's bucket span back from its spill file. A private
        // ifstream per (task, bucket) keeps concurrent bucket builds safe.
        const auto [offset, count] = spills[t].bucket_spans[b];
        if (count == 0) continue;
        std::ifstream in(spills[t].path, std::ios::binary);
        if (!in) MRSKY_FAIL("cannot reopen shuffle spill file: " + spills[t].path);
        in.seekg(static_cast<std::streamoff>(offset));
        for (std::uint64_t r = 0; r < count; ++r) {
          bucket.push_back(config.spill_codec.read(in));
        }
        if (!in) MRSKY_FAIL("truncated shuffle spill file: " + spills[t].path);
        continue;
      }
      auto& shard = shards[t][b];
      bucket.insert(bucket.end(), std::make_move_iterator(shard.begin()),
                    std::make_move_iterator(shard.end()));
      shard.clear();
    }
    bucket_span.arg("bucket", b);
    bucket_span.arg("records", total);
  };
  std::atomic<std::uint64_t> deferred_shuffle_ns{0};
  if (!spill_enabled) {
    common::ScopedSpan shuffle_span(opts.trace, "shuffle", "shuffle");
    shuffle_span.arg("job", config.name);
    shuffle_span.arg("records", result.metrics.shuffle_records);
    shuffle_span.arg("bytes", result.metrics.shuffle_bytes);
    detail::for_each_task(num_reduces, pool.get(), build_bucket);
  }
  result.metrics.shuffle_ns = shuffle_timer.elapsed_ns();

  // ---- Reduce phase ----
  // The bucket is sorted and its key-group boundaries computed once; the
  // attempt loop then executes whole key groups as its input units, so a
  // mid-task failure re-reduces the bucket from the first group (Hadoop
  // re-fetches the task's map outputs on retry). Grouping is identical to
  // the former sort-and-sweep, so output bytes are unchanged.
  opts.cancel.throw_if_stopped("reduce phase start");
  std::vector<std::vector<KV<OutK, OutV>>> reduce_outputs(num_reduces);
  detail::for_each_task(num_reduces, pool.get(), [&](std::size_t t) {
    common::ScopedSpan task_span(opts.trace, "reduce", "task");
    task_span.arg("job", config.name);
    task_span.arg("task", t);
    common::Timer timer;
    TaskContext ctx;
    Emitter<OutK, OutV> emitter;
    auto& m = result.metrics.reduce_tasks[t];
    if (spill_enabled) {
      common::Timer bucket_timer;
      build_bucket(t);
      deferred_shuffle_ns.fetch_add(bucket_timer.elapsed_ns(), std::memory_order_relaxed);
    }
    m.records_in = buckets[t].size();
    auto& bucket = buckets[t];
    std::stable_sort(bucket.begin(), bucket.end(),
                     [](const KV<MidK, MidV>& a, const KV<MidK, MidV>& b) { return a.key < b.key; });
    std::vector<std::pair<std::size_t, std::size_t>> groups;  // [first, last) runs
    for (std::size_t i = 0; i < bucket.size();) {
      std::size_t j = i + 1;
      while (j < bucket.size() && !(bucket[i].key < bucket[j].key)) ++j;
      groups.emplace_back(i, j);
      i = j;
    }
    auto outcome = detail::run_task_attempts(
        opts, config.name, /*phase=*/1, t, groups.size(), ctx,
        [&emitter] { emitter = Emitter<OutK, OutV>{}; },
        [&](std::size_t g, TaskContext& attempt_ctx, bool may_fail) -> std::uint64_t {
          const auto [first, last] = groups[g];
          std::vector<MidV> values;
          values.reserve(last - first);
          for (std::size_t r = first; r < last; ++r) {
            // A discardable attempt must leave the bucket intact for the
            // re-execution; only the guaranteed-surviving attempt may move
            // the values out.
            if (may_fail) {
              values.push_back(bucket[r].value);
            } else {
              values.push_back(std::move(bucket[r].value));
            }
          }
          config.reduce_fn(bucket[first].key, values, emitter, attempt_ctx);
          return last - first;
        });
    reduce_outputs[t] = emitter.take();
    // The bucket is dead once its groups have reduced; reclaim eagerly so a
    // deferred (spilled) shuffle holds at most one bucket per worker lane.
    std::vector<KV<MidK, MidV>>().swap(buckets[t]);
    m.records_out = reduce_outputs[t].size();
    m.work_units = ctx.work_units();
    m.wall_ns = timer.elapsed_ns();
    m.attempts = outcome.attempts;
    m.records_skipped = outcome.records_skipped;
    m.wasted_records = outcome.wasted_records;
    m.wasted_work_units = outcome.wasted_work_units;
    m.failure_events = std::move(outcome.events);
    m.counters = ctx.counters();
    task_span.arg("records_in", m.records_in);
    task_span.arg("records_out", m.records_out);
    task_span.arg("attempts", m.attempts);
    if (m.wasted_records > 0) task_span.arg("wasted_records", m.wasted_records);
  });

  // Deferred bucket builds are shuffle work that happened to run inside
  // reduce tasks; account them where the eager path would have.
  if (spill_enabled) {
    result.metrics.shuffle_ns +=
        static_cast<std::int64_t>(deferred_shuffle_ns.load(std::memory_order_relaxed));
  }

  std::size_t total_out = 0;
  for (const auto& out : reduce_outputs) total_out += out.size();
  result.output.reserve(total_out);
  for (auto& out : reduce_outputs) {
    result.output.insert(result.output.end(), std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
  }
  return result;
}

/// Executes one MapReduce job over an in-memory record vector.
template <typename InK, typename InV, typename MidK, typename MidV, typename OutK,
          typename OutV>
JobResult<OutK, OutV> run_job(const JobConfig<InK, InV, MidK, MidV, OutK, OutV>& config,
                              const std::vector<KV<InK, InV>>& input,
                              const RunOptions& opts = {}) {
  return run_job(config, VectorInput<InK, InV>{&input}, opts);
}

}  // namespace mrsky::mr
