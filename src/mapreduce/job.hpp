// The MapReduce job engine.
//
// A faithful miniature of the Hadoop execution model the paper ran on:
//
//   input splits ──map──▶ (combine) ──shuffle/sort──▶ reduce ──▶ output
//
// * Input is split into `num_map_tasks` contiguous splits (HDFS blocks).
// * Each map task applies `map_fn` per record, then — if a combiner is
//   configured — groups its own output by key and applies `combine_fn`
//   (Hadoop's map-side combine; its cost is charged to the map task).
// * The shuffle routes records to `num_reduce_tasks` buckets via
//   `partition_fn` (default: std::hash of the key) and sorts each bucket by
//   key (sort-merge grouping, requires operator< on the mid key).
// * Each reduce task applies `reduce_fn` once per key group.
//
// Execution is sequential or thread-pooled (ExecutionMode); results and
// metrics are bitwise identical in both modes because tasks are pure and
// outputs are gathered in task order, never completion order. The cluster
// *simulation* (cluster.hpp) is a separate concern that consumes the metrics
// afterwards — so experiments are reproducible on any host, including this
// repository's single-core CI.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/mapreduce/keyvalue.hpp"
#include "src/mapreduce/metrics.hpp"

namespace mrsky::mr {

enum class ExecutionMode { kSequential, kThreads };

struct RunOptions {
  ExecutionMode mode = ExecutionMode::kSequential;
  /// Worker count for kThreads; 0 means hardware concurrency.
  std::size_t num_threads = 0;

  /// Fault injection: probability that any task attempt fails and is retried
  /// (Hadoop task-retry semantics). Failures are a deterministic hash of
  /// (job name, phase, task index, attempt, failure_seed), so runs are
  /// reproducible and identical under kSequential and kThreads. A failed
  /// attempt's partial output is discarded and the task re-executes from its
  /// input; TaskMetrics::attempts records the re-runs and the cluster
  /// simulator charges them. 0 disables injection.
  double task_failure_probability = 0.0;
  /// Attempts per task before the whole job aborts (mapred.*.max.attempts).
  std::size_t max_task_attempts = 4;
  std::uint64_t failure_seed = 0xFA11;
};

namespace detail {

/// Deterministic attempt-failure decision (splitmix-style avalanche).
inline bool attempt_fails(const RunOptions& opts, const std::string& job, int phase,
                          std::size_t task, std::size_t attempt) {
  if (opts.task_failure_probability <= 0.0) return false;
  std::uint64_t h = opts.failure_seed ^ (0x9e3779b97f4a7c15ULL * (task + 1));
  for (char c : job) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h ^= static_cast<std::uint64_t>(phase) << 32;
  h ^= attempt * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < opts.task_failure_probability;
}

}  // namespace detail

template <typename InK, typename InV, typename MidK, typename MidV, typename OutK,
          typename OutV>
struct JobConfig {
  std::string name = "job";
  std::size_t num_map_tasks = 1;
  std::size_t num_reduce_tasks = 1;

  using MapFn = std::function<void(const InK&, const InV&, Emitter<MidK, MidV>&, TaskContext&)>;
  using CombineFn =
      std::function<void(const MidK&, std::vector<MidV>&, Emitter<MidK, MidV>&, TaskContext&)>;
  using ReduceFn =
      std::function<void(const MidK&, std::vector<MidV>&, Emitter<OutK, OutV>&, TaskContext&)>;
  using PartitionFn = std::function<std::size_t(const MidK&, std::size_t)>;
  using ValueBytesFn = std::function<std::size_t(const MidV&)>;

  MapFn map_fn;
  CombineFn combine_fn;  ///< optional map-side combine
  ReduceFn reduce_fn;
  /// Routes a mid key to a reduce bucket; default std::hash(key) % buckets.
  PartitionFn partition_fn;
  /// Approximate payload size of a shuffled value; default sizeof(MidV).
  ValueBytesFn value_bytes_fn;
};

template <typename OutK, typename OutV>
struct JobResult {
  std::vector<KV<OutK, OutV>> output;
  JobMetrics metrics;
};

namespace detail {

/// Sorts records by key and invokes `fn(key, values)` per key group,
/// consuming the records. Requires operator< on K.
template <typename K, typename V, typename Fn>
void group_by_key(std::vector<KV<K, V>>& records, Fn&& fn) {
  std::stable_sort(records.begin(), records.end(),
                   [](const KV<K, V>& a, const KV<K, V>& b) { return a.key < b.key; });
  std::size_t i = 0;
  while (i < records.size()) {
    std::size_t j = i + 1;
    while (j < records.size() && !(records[i].key < records[j].key)) ++j;
    std::vector<V> values;
    values.reserve(j - i);
    for (std::size_t r = i; r < j; ++r) values.push_back(std::move(records[r].value));
    fn(records[i].key, values);
    i = j;
  }
}

/// Evenly-sized contiguous split boundaries: returns num_splits+1 offsets.
inline std::vector<std::size_t> split_offsets(std::size_t n, std::size_t num_splits) {
  std::vector<std::size_t> offsets(num_splits + 1, 0);
  for (std::size_t s = 0; s <= num_splits; ++s) {
    offsets[s] = n * s / num_splits;
  }
  return offsets;
}

/// Runs `fn(i)` for i in [0, count), sequentially or on a pool.
inline void for_each_task(std::size_t count, const RunOptions& opts,
                          const std::function<void(std::size_t)>& fn) {
  if (opts.mode == ExecutionMode::kSequential || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t threads =
      opts.num_threads == 0 ? common::ThreadPool::default_concurrency() : opts.num_threads;
  common::ThreadPool pool(std::min(threads, count));
  pool.parallel_for(count, fn);
}

}  // namespace detail

/// A reduce-less job (Hadoop's numReduceTasks = 0): map output is the job
/// output, no shuffle, no sort. Used for pure transform/filter passes.
template <typename InK, typename InV, typename OutK, typename OutV>
struct MapOnlyConfig {
  std::string name = "map-only";
  std::size_t num_map_tasks = 1;
  std::function<void(const InK&, const InV&, Emitter<OutK, OutV>&, TaskContext&)> map_fn;
};

/// Executes a map-only job: per-task metrics are recorded exactly as in the
/// full engine (including fault-injection retries); shuffle counters stay 0.
template <typename InK, typename InV, typename OutK, typename OutV>
JobResult<OutK, OutV> run_map_only(const MapOnlyConfig<InK, InV, OutK, OutV>& config,
                                   const std::vector<KV<InK, InV>>& input,
                                   const RunOptions& opts = {}) {
  MRSKY_REQUIRE(static_cast<bool>(config.map_fn), "map-only job needs a map function");
  MRSKY_REQUIRE(config.num_map_tasks >= 1, "need at least one map task");

  JobResult<OutK, OutV> result;
  result.metrics.job_name = config.name;
  result.metrics.map_tasks.resize(config.num_map_tasks);

  const auto offsets = detail::split_offsets(input.size(), config.num_map_tasks);
  std::vector<std::vector<KV<OutK, OutV>>> outputs(config.num_map_tasks);
  detail::for_each_task(config.num_map_tasks, opts, [&](std::size_t t) {
    std::uint64_t attempt = 0;
    while (detail::attempt_fails(opts, config.name, /*phase=*/0, t, attempt)) {
      ++attempt;
      if (attempt >= opts.max_task_attempts) {
        MRSKY_FAIL("task " + std::to_string(t) + " of job '" + config.name + "' failed " +
                   std::to_string(opts.max_task_attempts) + " attempts");
      }
    }
    common::Timer timer;
    TaskContext ctx;
    Emitter<OutK, OutV> emitter;
    for (std::size_t r = offsets[t]; r < offsets[t + 1]; ++r) {
      config.map_fn(input[r].key, input[r].value, emitter, ctx);
    }
    outputs[t] = emitter.take();
    auto& m = result.metrics.map_tasks[t];
    m.records_in = offsets[t + 1] - offsets[t];
    m.records_out = outputs[t].size();
    m.work_units = ctx.work_units();
    m.wall_ns = timer.elapsed_ns();
    m.attempts = attempt + 1;
    m.counters = ctx.counters();
  });

  for (auto& out : outputs) {
    result.output.insert(result.output.end(), std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
  }
  return result;
}

/// Executes one MapReduce job over an in-memory input. See file header for
/// the execution model. Throws mrsky::InvalidArgument on bad configuration.
template <typename InK, typename InV, typename MidK, typename MidV, typename OutK,
          typename OutV>
JobResult<OutK, OutV> run_job(const JobConfig<InK, InV, MidK, MidV, OutK, OutV>& config,
                              const std::vector<KV<InK, InV>>& input,
                              const RunOptions& opts = {}) {
  MRSKY_REQUIRE(static_cast<bool>(config.map_fn), "job needs a map function");
  MRSKY_REQUIRE(static_cast<bool>(config.reduce_fn), "job needs a reduce function");
  MRSKY_REQUIRE(config.num_map_tasks >= 1, "need at least one map task");
  MRSKY_REQUIRE(config.num_reduce_tasks >= 1, "need at least one reduce task");

  JobResult<OutK, OutV> result;
  result.metrics.job_name = config.name;
  result.metrics.map_tasks.resize(config.num_map_tasks);
  result.metrics.reduce_tasks.resize(config.num_reduce_tasks);

  const auto partition_of = [&](const MidK& key) -> std::size_t {
    if (config.partition_fn) {
      const std::size_t p = config.partition_fn(key, config.num_reduce_tasks);
      MRSKY_ASSERT(p < config.num_reduce_tasks, "partition_fn returned out-of-range bucket");
      return p;
    }
    return std::hash<MidK>{}(key) % config.num_reduce_tasks;
  };

  // Injected-failure retry loop (see RunOptions): a failing attempt is
  // decided deterministically before execution, so its cost appears in the
  // `attempts` metric (and the cluster simulator's bill) without re-running
  // the body locally.
  const auto surviving_attempt = [&opts, &config](int phase, std::size_t task) -> std::uint64_t {
    std::uint64_t attempt = 0;
    while (detail::attempt_fails(opts, config.name, phase, task, attempt)) {
      ++attempt;
      if (attempt >= opts.max_task_attempts) {
        MRSKY_FAIL("task " + std::to_string(task) + " of job '" + config.name + "' failed " +
                   std::to_string(opts.max_task_attempts) + " attempts");
      }
    }
    return attempt + 1;  // total attempts consumed
  };

  // ---- Map phase (with optional map-side combine) ----
  const auto offsets = detail::split_offsets(input.size(), config.num_map_tasks);
  std::vector<std::vector<KV<MidK, MidV>>> map_outputs(config.num_map_tasks);
  detail::for_each_task(config.num_map_tasks, opts, [&](std::size_t t) {
    const std::uint64_t attempts = surviving_attempt(/*phase=*/0, t);
    common::Timer timer;
    TaskContext ctx;
    Emitter<MidK, MidV> emitter;
    for (std::size_t r = offsets[t]; r < offsets[t + 1]; ++r) {
      config.map_fn(input[r].key, input[r].value, emitter, ctx);
    }
    auto emitted = emitter.take();
    if (config.combine_fn) {
      Emitter<MidK, MidV> combined;
      detail::group_by_key(emitted, [&](const MidK& key, std::vector<MidV>& values) {
        config.combine_fn(key, values, combined, ctx);
      });
      emitted = combined.take();
    }
    auto& m = result.metrics.map_tasks[t];
    m.records_in = offsets[t + 1] - offsets[t];
    m.records_out = emitted.size();
    m.work_units = ctx.work_units();
    m.wall_ns = timer.elapsed_ns();
    m.attempts = attempts;
    m.counters = ctx.counters();
    map_outputs[t] = std::move(emitted);
  });

  // ---- Shuffle: route to buckets (task order, so fully deterministic) ----
  std::vector<std::vector<KV<MidK, MidV>>> buckets(config.num_reduce_tasks);
  for (auto& task_output : map_outputs) {
    for (auto& record : task_output) {
      result.metrics.shuffle_records += 1;
      result.metrics.shuffle_bytes +=
          sizeof(MidK) +
          (config.value_bytes_fn ? config.value_bytes_fn(record.value) : sizeof(MidV));
      buckets[partition_of(record.key)].push_back(std::move(record));
    }
    task_output.clear();
  }

  // ---- Reduce phase ----
  std::vector<std::vector<KV<OutK, OutV>>> reduce_outputs(config.num_reduce_tasks);
  detail::for_each_task(config.num_reduce_tasks, opts, [&](std::size_t t) {
    const std::uint64_t attempts = surviving_attempt(/*phase=*/1, t);
    common::Timer timer;
    TaskContext ctx;
    Emitter<OutK, OutV> emitter;
    auto& m = result.metrics.reduce_tasks[t];
    m.attempts = attempts;
    m.records_in = buckets[t].size();
    detail::group_by_key(buckets[t], [&](const MidK& key, std::vector<MidV>& values) {
      config.reduce_fn(key, values, emitter, ctx);
    });
    reduce_outputs[t] = emitter.take();
    m.records_out = reduce_outputs[t].size();
    m.work_units = ctx.work_units();
    m.wall_ns = timer.elapsed_ns();
    m.counters = ctx.counters();
  });

  for (auto& out : reduce_outputs) {
    result.output.insert(result.output.end(), std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
  }
  return result;
}

}  // namespace mrsky::mr
