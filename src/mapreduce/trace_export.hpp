// Exports the cluster simulator's scheduled timeline as trace spans.
//
// The engine's spans (job.hpp, RunOptions::trace) show what this process
// really did; the functions here append what the *modelled* cluster would do
// — per-task placements from trace_job's LPT schedules, on one trace lane
// per cluster slot — under the simulator's own pid (kTracePidSimulator), so
// one Chrome trace file carries both timelines side by side. Simulated
// seconds map to trace nanoseconds 1:1e9.
#pragma once

#include <span>

#include "src/common/trace.hpp"
#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/metrics.hpp"

namespace mrsky::mr {

/// Appends one job's simulated schedule to `recorder`, with the job starting
/// at simulated second `start_seconds`. Emits one "job" span on lane 0 (job
/// startup included), plus per-task "map"/"reduce" spans on lanes 1..L (one
/// per cluster slot, server-major) carrying `task`, `reexecuted` and
/// `speculated` args. Returns the job's simulated end time in seconds.
double append_schedule_trace(common::TraceRecorder& recorder, const JobMetrics& metrics,
                             const ClusterModel& model, double start_seconds = 0.0);

/// append_schedule_trace over a whole pipeline, jobs back to back (the same
/// sequencing simulate_pipeline charges). Returns total simulated seconds.
double append_pipeline_trace(common::TraceRecorder& recorder, std::span<const JobMetrics> jobs,
                             const ClusterModel& model);

}  // namespace mrsky::mr
