#include "src/mapreduce/cluster.hpp"

#include <algorithm>
#include <numeric>
#include <limits>

#include "src/common/error.hpp"

namespace mrsky::mr {

double ClusterModel::server_speed(std::size_t index) const {
  if (index < server_speed_factors.size()) {
    MRSKY_REQUIRE(server_speed_factors[index] > 0.0, "server speed factors must be positive");
    return server_speed_factors[index];
  }
  return 1.0;
}

ClusterModel ClusterModel::with_stragglers(std::size_t count, double slowdown) const {
  MRSKY_REQUIRE(slowdown >= 1.0, "slowdown must be >= 1");
  MRSKY_REQUIRE(count <= servers, "more stragglers than servers");
  ClusterModel out = *this;
  out.server_speed_factors.resize(servers);
  for (std::size_t i = 0; i < servers; ++i) out.server_speed_factors[i] = server_speed(i);
  for (std::size_t i = servers - count; i < servers; ++i) {
    out.server_speed_factors[i] /= slowdown;
  }
  return out;
}

PhaseTimes& PhaseTimes::operator+=(const PhaseTimes& other) noexcept {
  startup_seconds += other.startup_seconds;
  map_seconds += other.map_seconds;
  reduce_seconds += other.reduce_seconds;
  return *this;
}

PhaseSchedule lpt_schedule(std::span<const double> task_costs,
                           std::span<const double> lane_speeds) {
  MRSKY_REQUIRE(!lane_speeds.empty(), "need at least one lane");
  for (double s : lane_speeds) MRSKY_REQUIRE(s > 0.0, "lane speeds must be positive");

  PhaseSchedule schedule;
  schedule.lane_speeds.assign(lane_speeds.begin(), lane_speeds.end());
  schedule.placements.resize(task_costs.size());
  if (task_costs.empty()) return schedule;

  // Longest task first, each to the earliest-AVAILABLE lane — the Hadoop
  // slot model: the scheduler hands the next queued task to whichever slot
  // frees first and only discovers a server is slow while the task runs.
  // (An earliest-FINISH assignment would be omniscient about speeds and
  // could never produce the stragglers speculative execution exists for.)
  std::vector<std::size_t> order(task_costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return task_costs[a] > task_costs[b]; });

  std::vector<double> lane_free_at(lane_speeds.size(), 0.0);
  for (std::size_t task : order) {
    std::size_t best_lane = 0;
    for (std::size_t lane = 1; lane < lane_speeds.size(); ++lane) {
      if (lane_free_at[lane] < lane_free_at[best_lane]) best_lane = lane;
    }
    const double start = lane_free_at[best_lane];
    const double finish = start + task_costs[task] / lane_speeds[best_lane];
    schedule.placements[task] = TaskPlacement{task, best_lane, start, finish, false};
    lane_free_at[best_lane] = finish;
    schedule.makespan_seconds = std::max(schedule.makespan_seconds, finish);
  }
  return schedule;
}

PhaseSchedule lpt_schedule_speculative(std::span<const double> task_costs,
                                       std::span<const double> lane_speeds) {
  PhaseSchedule schedule = lpt_schedule(task_costs, lane_speeds);
  if (schedule.placements.empty()) return schedule;

  // Lane availability after the base schedule.
  std::vector<double> lane_free(lane_speeds.size(), 0.0);
  for (const auto& p : schedule.placements) {
    lane_free[p.lane] = std::max(lane_free[p.lane], p.end_seconds);
  }

  // Cap the makespan-defining task with a backup copy while it helps. Each
  // round: find the latest-ending task, try launching a copy on the lane
  // that would finish it earliest; the task completes at the winner's time
  // and the backup's lane time is consumed.
  for (std::size_t round = 0; round < schedule.placements.size(); ++round) {
    std::size_t straggler = 0;
    for (std::size_t i = 1; i < schedule.placements.size(); ++i) {
      if (schedule.placements[i].end_seconds >
          schedule.placements[straggler].end_seconds) {
        straggler = i;
      }
    }
    auto& victim = schedule.placements[straggler];
    std::size_t best_lane = lane_speeds.size();
    double best_finish = victim.end_seconds;
    for (std::size_t lane = 0; lane < lane_speeds.size(); ++lane) {
      if (lane == victim.lane) continue;
      const double finish =
          lane_free[lane] + task_costs[victim.task_index] / lane_speeds[lane];
      if (finish < best_finish) {
        best_finish = finish;
        best_lane = lane;
      }
    }
    if (best_lane == lane_speeds.size()) break;  // no backup beats the original
    lane_free[best_lane] = best_finish;
    victim.end_seconds = best_finish;
    victim.speculated = true;
  }

  schedule.makespan_seconds = 0.0;
  for (const auto& p : schedule.placements) {
    schedule.makespan_seconds = std::max(schedule.makespan_seconds, p.end_seconds);
  }
  return schedule;
}

double lpt_makespan(std::span<const double> task_costs, std::size_t lanes) {
  MRSKY_REQUIRE(lanes >= 1, "need at least one lane");
  const std::vector<double> speeds(lanes, 1.0);
  return lpt_schedule(task_costs, speeds).makespan_seconds;
}

namespace {

std::vector<double> lane_speeds_for(const ClusterModel& model, std::size_t slots_per_server) {
  std::vector<double> speeds;
  speeds.reserve(model.servers * slots_per_server);
  for (std::size_t server = 0; server < model.servers; ++server) {
    for (std::size_t slot = 0; slot < slots_per_server; ++slot) {
      speeds.push_back(model.server_speed(server));
    }
  }
  return speeds;
}

std::vector<double> map_task_costs(const JobMetrics& metrics, const ClusterModel& model) {
  std::vector<double> costs;
  costs.reserve(metrics.map_tasks.size());
  for (const auto& t : metrics.map_tasks) {
    // Failed attempts (engine fault injection) re-ran the whole task.
    costs.push_back(static_cast<double>(t.attempts) *
                    (model.task_startup_seconds +
                     static_cast<double>(t.records_in) * model.seconds_per_map_record +
                     static_cast<double>(t.work_units) * model.seconds_per_work_unit));
  }
  return costs;
}

std::vector<double> reduce_task_costs(const JobMetrics& metrics, const ClusterModel& model) {
  std::vector<double> costs;
  costs.reserve(metrics.reduce_tasks.size());
  for (const auto& t : metrics.reduce_tasks) {
    costs.push_back(static_cast<double>(t.attempts) *
                    (model.task_startup_seconds +
                     static_cast<double>(t.records_in) * model.seconds_per_shuffle_record +
                     static_cast<double>(t.work_units) * model.seconds_per_work_unit));
  }
  return costs;
}

}  // namespace

ScheduleTrace trace_job(const JobMetrics& metrics, const ClusterModel& model) {
  const auto schedule = model.speculative_execution ? lpt_schedule_speculative : lpt_schedule;
  ScheduleTrace trace;
  trace.map = schedule(map_task_costs(metrics, model),
                       lane_speeds_for(model, model.map_slots_per_server));
  trace.reduce = schedule(reduce_task_costs(metrics, model),
                          lane_speeds_for(model, model.reduce_slots_per_server));
  trace.times.startup_seconds = model.job_startup_seconds;
  trace.times.map_seconds = trace.map.makespan_seconds;
  trace.times.reduce_seconds = trace.reduce.makespan_seconds;
  return trace;
}

PhaseTimes simulate_job(const JobMetrics& metrics, const ClusterModel& model) {
  return trace_job(metrics, model).times;
}

PhaseTimes simulate_pipeline(std::span<const JobMetrics> jobs, const ClusterModel& model) {
  PhaseTimes total;
  for (const auto& job : jobs) total += simulate_job(job, model);
  return total;
}

}  // namespace mrsky::mr
