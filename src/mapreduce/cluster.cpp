#include "src/mapreduce/cluster.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "src/common/error.hpp"

namespace mrsky::mr {

double ClusterModel::server_speed(std::size_t index) const {
  if (index < server_speed_factors.size()) {
    MRSKY_REQUIRE(server_speed_factors[index] > 0.0, "server speed factors must be positive");
    return server_speed_factors[index];
  }
  return 1.0;
}

ClusterModel ClusterModel::with_stragglers(std::size_t count, double slowdown) const {
  MRSKY_REQUIRE(slowdown >= 1.0, "slowdown must be >= 1");
  MRSKY_REQUIRE(count <= servers, "more stragglers than servers");
  ClusterModel out = *this;
  out.server_speed_factors.resize(servers);
  for (std::size_t i = 0; i < servers; ++i) out.server_speed_factors[i] = server_speed(i);
  for (std::size_t i = servers - count; i < servers; ++i) {
    out.server_speed_factors[i] /= slowdown;
  }
  return out;
}

PhaseTimes& PhaseTimes::operator+=(const PhaseTimes& other) noexcept {
  startup_seconds += other.startup_seconds;
  map_seconds += other.map_seconds;
  reduce_seconds += other.reduce_seconds;
  return *this;
}

PhaseSchedule lpt_schedule(std::span<const double> task_costs,
                           std::span<const double> lane_speeds) {
  MRSKY_REQUIRE(!lane_speeds.empty(), "need at least one lane");
  for (double s : lane_speeds) MRSKY_REQUIRE(s > 0.0, "lane speeds must be positive");

  PhaseSchedule schedule;
  schedule.lane_speeds.assign(lane_speeds.begin(), lane_speeds.end());
  schedule.placements.resize(task_costs.size());
  if (task_costs.empty()) return schedule;

  // Longest task first, each to the earliest-AVAILABLE lane — the Hadoop
  // slot model: the scheduler hands the next queued task to whichever slot
  // frees first and only discovers a server is slow while the task runs.
  // (An earliest-FINISH assignment would be omniscient about speeds and
  // could never produce the stragglers speculative execution exists for.)
  std::vector<std::size_t> order(task_costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return task_costs[a] > task_costs[b]; });

  std::vector<double> lane_free_at(lane_speeds.size(), 0.0);
  for (std::size_t task : order) {
    std::size_t best_lane = 0;
    for (std::size_t lane = 1; lane < lane_speeds.size(); ++lane) {
      if (lane_free_at[lane] < lane_free_at[best_lane]) best_lane = lane;
    }
    const double start = lane_free_at[best_lane];
    const double finish = start + task_costs[task] / lane_speeds[best_lane];
    schedule.placements[task] = TaskPlacement{task, best_lane, start, finish, false};
    lane_free_at[best_lane] = finish;
    schedule.makespan_seconds = std::max(schedule.makespan_seconds, finish);
  }
  return schedule;
}

namespace {

/// Speculative backup rounds over an existing schedule. Each round: find the
/// latest-ending task, try launching a copy on the usable lane that would
/// finish it earliest; the task completes at the winner's time and the
/// backup's lane time is consumed. `lane_usable` masks lanes backups may run
/// on (dead servers under node failures); empty = all lanes usable.
void apply_speculation(PhaseSchedule& schedule, std::span<const double> task_costs,
                       std::span<const double> lane_speeds,
                       std::span<const char> lane_usable) {
  if (schedule.placements.empty()) return;

  // Lane availability after the base schedule.
  std::vector<double> lane_free(lane_speeds.size(), 0.0);
  for (const auto& p : schedule.placements) {
    lane_free[p.lane] = std::max(lane_free[p.lane], p.end_seconds);
  }

  for (std::size_t round = 0; round < schedule.placements.size(); ++round) {
    std::size_t straggler = 0;
    for (std::size_t i = 1; i < schedule.placements.size(); ++i) {
      if (schedule.placements[i].end_seconds >
          schedule.placements[straggler].end_seconds) {
        straggler = i;
      }
    }
    auto& victim = schedule.placements[straggler];
    std::size_t best_lane = lane_speeds.size();
    double best_finish = victim.end_seconds;
    for (std::size_t lane = 0; lane < lane_speeds.size(); ++lane) {
      if (lane == victim.lane) continue;
      if (!lane_usable.empty() && !lane_usable[lane]) continue;
      const double finish =
          lane_free[lane] + task_costs[victim.task_index] / lane_speeds[lane];
      if (finish < best_finish) {
        best_finish = finish;
        best_lane = lane;
      }
    }
    if (best_lane == lane_speeds.size()) break;  // no backup beats the original
    lane_free[best_lane] = best_finish;
    victim.end_seconds = best_finish;
    victim.speculated = true;
  }

  schedule.makespan_seconds = 0.0;
  for (const auto& p : schedule.placements) {
    schedule.makespan_seconds = std::max(schedule.makespan_seconds, p.end_seconds);
  }
}

}  // namespace

PhaseSchedule lpt_schedule_speculative(std::span<const double> task_costs,
                                       std::span<const double> lane_speeds) {
  PhaseSchedule schedule = lpt_schedule(task_costs, lane_speeds);
  apply_speculation(schedule, task_costs, lane_speeds, {});
  return schedule;
}

PhaseSchedule lpt_schedule_with_failures(std::span<const double> task_costs,
                                         std::span<const double> lane_speeds,
                                         std::size_t slots_per_server,
                                         std::span<const NodeFailure> failures,
                                         double phase_start_seconds,
                                         bool lose_completed_outputs,
                                         bool speculative) {
  MRSKY_REQUIRE(!lane_speeds.empty(), "need at least one lane");
  MRSKY_REQUIRE(slots_per_server >= 1, "need at least one slot per server");
  MRSKY_REQUIRE(lane_speeds.size() % slots_per_server == 0,
                "lane count must be a whole number of servers");
  for (double s : lane_speeds) MRSKY_REQUIRE(s > 0.0, "lane speeds must be positive");
  const std::size_t num_servers = lane_speeds.size() / slots_per_server;

  PhaseSchedule schedule;
  schedule.lane_speeds.assign(lane_speeds.begin(), lane_speeds.end());
  schedule.placements.resize(task_costs.size());
  if (task_costs.empty()) return schedule;

  // Earliest phase-relative death time per server (a server only dies once).
  std::vector<double> death(num_servers, std::numeric_limits<double>::infinity());
  for (const auto& f : failures) {
    MRSKY_REQUIRE(f.server < num_servers, "node failure names a server outside the cluster");
    death[f.server] = std::min(death[f.server], f.time_seconds - phase_start_seconds);
  }
  std::vector<std::pair<double, std::size_t>> events;  // (relative time, server)
  for (std::size_t s = 0; s < num_servers; ++s) {
    if (death[s] != std::numeric_limits<double>::infinity()) events.emplace_back(death[s], s);
  }
  std::sort(events.begin(), events.end());

  std::vector<char> alive(lane_speeds.size(), 1);
  for (std::size_t lane = 0; lane < lane_speeds.size(); ++lane) {
    if (death[lane / slots_per_server] <= 0.0) alive[lane] = 0;
  }

  // Greedy plan → apply next death event → cull and requeue → re-plan.
  // Mirrors the JobTracker: it schedules with no knowledge of future
  // failures, then reacts when a TaskTracker stops heartbeating.
  std::vector<std::size_t> order(task_costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return task_costs[a] > task_costs[b]; });

  std::vector<char> pending(task_costs.size(), 1);
  std::vector<char> reexec(task_costs.size(), 0);
  std::vector<double> lane_free(lane_speeds.size(), 0.0);

  const auto plan_pending = [&] {
    for (std::size_t task : order) {
      if (!pending[task]) continue;
      std::size_t best_lane = lane_speeds.size();
      for (std::size_t lane = 0; lane < lane_speeds.size(); ++lane) {
        if (!alive[lane]) continue;
        if (best_lane == lane_speeds.size() || lane_free[lane] < lane_free[best_lane]) {
          best_lane = lane;
        }
      }
      MRSKY_REQUIRE(best_lane != lane_speeds.size(),
                    "every server failed before the phase completed");
      const double start = lane_free[best_lane];
      const double finish = start + task_costs[task] / lane_speeds[best_lane];
      schedule.placements[task] =
          TaskPlacement{task, best_lane, start, finish, false, reexec[task] != 0};
      lane_free[best_lane] = finish;
      pending[task] = 0;
    }
  };

  plan_pending();
  for (const auto& [when, server] : events) {
    if (when <= 0.0) continue;  // dead from the start: lanes already masked
    double makespan = 0.0;
    for (const auto& p : schedule.placements) makespan = std::max(makespan, p.end_seconds);
    for (std::size_t slot = 0; slot < slots_per_server; ++slot) {
      alive[server * slots_per_server + slot] = 0;
    }
    if (when >= makespan) continue;  // phase already over when the node died

    // Cull the plan at time `when`: work on the dead server is lost (and,
    // for map phases, its completed output with it); tasks not yet started
    // anywhere go back to the queue so requeued work interleaves fairly.
    for (auto& p : schedule.placements) {
      const bool on_dead = p.lane / slots_per_server == server;
      if (on_dead) {
        if (p.end_seconds <= when && !lose_completed_outputs) continue;  // output safe
        if (p.start_seconds < when) reexec[p.task_index] = 1;  // ran, then lost
        pending[p.task_index] = 1;
      } else if (alive[p.lane] && p.start_seconds >= when) {
        pending[p.task_index] = 1;  // never started: rejoin the queue
      }
    }
    for (std::size_t lane = 0; lane < lane_speeds.size(); ++lane) {
      if (!alive[lane]) continue;
      double committed = when;  // a surviving lane cannot start new work earlier
      for (const auto& p : schedule.placements) {
        if (!pending[p.task_index] && p.lane == lane) {
          committed = std::max(committed, p.end_seconds);
        }
      }
      lane_free[lane] = committed;
    }
    plan_pending();
  }

  schedule.makespan_seconds = 0.0;
  for (const auto& p : schedule.placements) {
    schedule.makespan_seconds = std::max(schedule.makespan_seconds, p.end_seconds);
  }
  if (speculative) apply_speculation(schedule, task_costs, lane_speeds, alive);
  return schedule;
}

double lpt_makespan(std::span<const double> task_costs, std::size_t lanes) {
  MRSKY_REQUIRE(lanes >= 1, "need at least one lane");
  const std::vector<double> speeds(lanes, 1.0);
  return lpt_schedule(task_costs, speeds).makespan_seconds;
}

namespace {

std::vector<double> lane_speeds_for(const ClusterModel& model, std::size_t slots_per_server) {
  std::vector<double> speeds;
  speeds.reserve(model.servers * slots_per_server);
  for (std::size_t server = 0; server < model.servers; ++server) {
    for (std::size_t slot = 0; slot < slots_per_server; ++slot) {
      speeds.push_back(model.server_speed(server));
    }
  }
  return speeds;
}

/// Cost of one task: the surviving attempt in full, plus what its failed
/// attempts actually burned — one startup each and the records/work the
/// engine measured before the attempt died (job.hpp records real prefixes,
/// so waste is measured, not imputed as `attempts × full`).
double task_cost(const TaskMetrics& t, const ClusterModel& model, double seconds_per_record) {
  const double full = model.task_startup_seconds +
                      static_cast<double>(t.records_in) * seconds_per_record +
                      static_cast<double>(t.work_units) * model.seconds_per_work_unit;
  const double waste =
      static_cast<double>(t.attempts - 1) * model.task_startup_seconds +
      static_cast<double>(t.wasted_records) * seconds_per_record +
      static_cast<double>(t.wasted_work_units) * model.seconds_per_work_unit;
  return full + waste;
}

std::vector<double> map_task_costs(const JobMetrics& metrics, const ClusterModel& model) {
  std::vector<double> costs;
  costs.reserve(metrics.map_tasks.size());
  for (const auto& t : metrics.map_tasks) {
    costs.push_back(task_cost(t, model, model.seconds_per_map_record));
  }
  return costs;
}

std::vector<double> reduce_task_costs(const JobMetrics& metrics, const ClusterModel& model) {
  std::vector<double> costs;
  costs.reserve(metrics.reduce_tasks.size());
  for (const auto& t : metrics.reduce_tasks) {
    costs.push_back(task_cost(t, model, model.seconds_per_shuffle_record));
  }
  return costs;
}

}  // namespace

ScheduleTrace trace_job(const JobMetrics& metrics, const ClusterModel& model) {
  ScheduleTrace trace;
  if (model.node_failures.empty()) {
    const auto schedule = model.speculative_execution ? lpt_schedule_speculative : lpt_schedule;
    trace.map = schedule(map_task_costs(metrics, model),
                         lane_speeds_for(model, model.map_slots_per_server));
    trace.reduce = schedule(reduce_task_costs(metrics, model),
                            lane_speeds_for(model, model.reduce_slots_per_server));
  } else {
    // Failure times are job-relative with the map phase starting at 0. Map
    // output lives on the mapper's local disk, so a mid-map node loss takes
    // the server's completed map tasks with it and they re-execute before
    // the reduce phase starts; reduce output (committed to the DFS) is safe,
    // so the reduce phase only reschedules lost in-flight work. A server
    // that died during the map phase shows up at the reduce phase as dead
    // from the start (its relative death time is <= 0).
    trace.map = lpt_schedule_with_failures(
        map_task_costs(metrics, model), lane_speeds_for(model, model.map_slots_per_server),
        model.map_slots_per_server, model.node_failures, /*phase_start_seconds=*/0.0,
        /*lose_completed_outputs=*/true, model.speculative_execution);
    trace.reduce = lpt_schedule_with_failures(
        reduce_task_costs(metrics, model),
        lane_speeds_for(model, model.reduce_slots_per_server), model.reduce_slots_per_server,
        model.node_failures, /*phase_start_seconds=*/trace.map.makespan_seconds,
        /*lose_completed_outputs=*/false, model.speculative_execution);
  }
  trace.times.startup_seconds = model.job_startup_seconds;
  trace.times.map_seconds = trace.map.makespan_seconds;
  trace.times.reduce_seconds = trace.reduce.makespan_seconds;
  return trace;
}

PhaseTimes simulate_job(const JobMetrics& metrics, const ClusterModel& model) {
  return trace_job(metrics, model).times;
}

PhaseTimes simulate_pipeline(std::span<const JobMetrics> jobs, const ClusterModel& model) {
  PhaseTimes total;
  for (const auto& job : jobs) total += simulate_job(job, model);
  return total;
}

}  // namespace mrsky::mr
