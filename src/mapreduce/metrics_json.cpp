#include "src/mapreduce/metrics_json.hpp"

#include <iomanip>
#include <sstream>

namespace mrsky::mr {

namespace {

/// Escapes the few characters that can appear in job names.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void append_counters(std::ostringstream& os,
                     const std::map<std::string, std::uint64_t>& counters) {
  os << "{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << escape(name) << "\":" << value;
  }
  os << "}";
}

}  // namespace

std::string to_json(const TaskMetrics& metrics) {
  std::ostringstream os;
  os << "{\"records_in\":" << metrics.records_in << ",\"records_out\":" << metrics.records_out
     << ",\"work_units\":" << metrics.work_units << ",\"wall_ns\":" << metrics.wall_ns
     << ",\"counters\":";
  append_counters(os, metrics.counters);
  os << "}";
  return os.str();
}

std::string to_json(const JobMetrics& metrics) {
  std::ostringstream os;
  os << "{\"job_name\":\"" << escape(metrics.job_name) << "\",\"map_tasks\":[";
  for (std::size_t i = 0; i < metrics.map_tasks.size(); ++i) {
    if (i > 0) os << ",";
    os << to_json(metrics.map_tasks[i]);
  }
  os << "],\"reduce_tasks\":[";
  for (std::size_t i = 0; i < metrics.reduce_tasks.size(); ++i) {
    if (i > 0) os << ",";
    os << to_json(metrics.reduce_tasks[i]);
  }
  os << "],\"shuffle_records\":" << metrics.shuffle_records
     << ",\"shuffle_bytes\":" << metrics.shuffle_bytes
     << ",\"shuffle_ns\":" << metrics.shuffle_ns << ",\"counter_totals\":";
  append_counters(os, metrics.counter_totals());
  os << "}";
  return os.str();
}

std::string to_json(const PhaseTimes& times) {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"startup_seconds\":" << times.startup_seconds
     << ",\"map_seconds\":" << times.map_seconds
     << ",\"reduce_seconds\":" << times.reduce_seconds
     << ",\"total_seconds\":" << times.total_seconds() << "}";
  return os.str();
}

}  // namespace mrsky::mr
