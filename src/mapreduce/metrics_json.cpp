#include "src/mapreduce/metrics_json.hpp"

#include <iomanip>
#include <sstream>

#include "src/common/json.hpp"

namespace mrsky::mr {

namespace {

/// Full JSON string escaping (control bytes included): job names can carry
/// arbitrary dataset/partition names. Shared with the trace exporter.
std::string escape(const std::string& s) { return common::json_escape(s); }

void append_counters(std::ostringstream& os,
                     const std::map<std::string, std::uint64_t>& counters) {
  os << "{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << escape(name) << "\":" << value;
  }
  os << "}";
}

void append_failure_report(std::ostringstream& os, const FailureReport& report) {
  os << "{\"tasks_retried\":" << report.tasks_retried
     << ",\"wasted_records\":" << report.wasted_records
     << ",\"wasted_work_units\":" << report.wasted_work_units
     << ",\"records_skipped\":" << report.records_skipped << ",\"events\":[";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const TaskFailureEvent& e = report.events[i];
    if (i > 0) os << ",";
    os << "{\"phase\":" << e.phase << ",\"task\":" << e.task << ",\"attempt\":" << e.attempt
       << ",\"records_processed\":" << e.records_processed
       << ",\"work_units_wasted\":" << e.work_units_wasted
       << ",\"injected\":" << (e.injected ? "true" : "false");
    if (!e.injected) os << ",\"bad_record\":" << e.bad_record;
    os << "}";
  }
  os << "]}";
}

}  // namespace

std::string to_json(const TaskMetrics& metrics) {
  std::ostringstream os;
  os << "{\"records_in\":" << metrics.records_in << ",\"records_out\":" << metrics.records_out
     << ",\"work_units\":" << metrics.work_units << ",\"wall_ns\":" << metrics.wall_ns
     << ",\"attempts\":" << metrics.attempts
     << ",\"records_skipped\":" << metrics.records_skipped
     << ",\"wasted_records\":" << metrics.wasted_records
     << ",\"wasted_work_units\":" << metrics.wasted_work_units << ",\"counters\":";
  append_counters(os, metrics.counters);
  os << "}";
  return os.str();
}

std::string to_json(const JobMetrics& metrics) {
  std::ostringstream os;
  os << "{\"job_name\":\"" << escape(metrics.job_name) << "\",\"map_tasks\":[";
  for (std::size_t i = 0; i < metrics.map_tasks.size(); ++i) {
    if (i > 0) os << ",";
    os << to_json(metrics.map_tasks[i]);
  }
  os << "],\"reduce_tasks\":[";
  for (std::size_t i = 0; i < metrics.reduce_tasks.size(); ++i) {
    if (i > 0) os << ",";
    os << to_json(metrics.reduce_tasks[i]);
  }
  os << "],\"shuffle_records\":" << metrics.shuffle_records
     << ",\"shuffle_bytes\":" << metrics.shuffle_bytes
     << ",\"shuffle_ns\":" << metrics.shuffle_ns
     << ",\"shuffle_spilled_bytes\":" << metrics.shuffle_spilled_bytes
     << ",\"shuffle_spill_files\":" << metrics.shuffle_spill_files
     << ",\"blocks_pruned\":" << metrics.blocks_pruned
     << ",\"bytes_read\":" << metrics.bytes_read
     << ",\"bytes_pruned\":" << metrics.bytes_pruned << ",\"counter_totals\":";
  append_counters(os, metrics.counter_totals());
  os << ",\"failures\":";
  append_failure_report(os, metrics.failure_report());
  os << "}";
  return os.str();
}

std::string to_json(const PhaseTimes& times) {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"startup_seconds\":" << times.startup_seconds
     << ",\"map_seconds\":" << times.map_seconds
     << ",\"reduce_seconds\":" << times.reduce_seconds
     << ",\"total_seconds\":" << times.total_seconds() << "}";
  return os.str();
}

}  // namespace mrsky::mr
