#include "src/mapreduce/metrics.hpp"

namespace mrsky::mr {

TaskMetrics& TaskMetrics::operator+=(const TaskMetrics& other) {
  records_in += other.records_in;
  records_out += other.records_out;
  work_units += other.work_units;
  wall_ns += other.wall_ns;
  attempts += other.attempts;
  for (const auto& [name, value] : other.counters) counters[name] += value;
  records_skipped += other.records_skipped;
  wasted_records += other.wasted_records;
  wasted_work_units += other.wasted_work_units;
  failure_events.insert(failure_events.end(), other.failure_events.begin(),
                        other.failure_events.end());
  return *this;
}

TaskMetrics JobMetrics::map_total() const {
  TaskMetrics total;
  for (const auto& t : map_tasks) total += t;
  return total;
}

TaskMetrics JobMetrics::reduce_total() const {
  TaskMetrics total;
  for (const auto& t : reduce_tasks) total += t;
  return total;
}

std::uint64_t JobMetrics::total_work_units() const {
  return map_total().work_units + reduce_total().work_units;
}

double JobMetrics::total_wall_seconds() const {
  return static_cast<double>(map_total().wall_ns + reduce_total().wall_ns) * 1e-9;
}

FailureReport JobMetrics::failure_report() const {
  FailureReport report;
  const auto absorb = [&report](const std::vector<TaskMetrics>& tasks) {
    for (const auto& t : tasks) {
      if (t.attempts > 1) ++report.tasks_retried;
      report.wasted_records += t.wasted_records;
      report.wasted_work_units += t.wasted_work_units;
      report.records_skipped += t.records_skipped;
      report.events.insert(report.events.end(), t.failure_events.begin(),
                           t.failure_events.end());
    }
  };
  absorb(map_tasks);
  absorb(reduce_tasks);
  return report;
}

std::map<std::string, std::uint64_t> JobMetrics::counter_totals() const {
  std::map<std::string, std::uint64_t> totals = map_total().counters;
  for (const auto& [name, value] : reduce_total().counters) totals[name] += value;
  return totals;
}

}  // namespace mrsky::mr
