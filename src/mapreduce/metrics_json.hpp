// JSON serialisation of engine metrics — the machine-readable counterpart of
// the bench tables, so experiment results can be archived and diffed (the
// CLI tool's --metrics-json flag uses this).
//
// Hand-rolled writer: the schema is tiny and fixed, and the library has no
// third-party dependencies to lean on.
#pragma once

#include <string>

#include "src/mapreduce/cluster.hpp"
#include "src/mapreduce/metrics.hpp"

namespace mrsky::mr {

/// {"records_in":..,"records_out":..,"work_units":..,"wall_ns":..,
///  "counters":{...}}
[[nodiscard]] std::string to_json(const TaskMetrics& metrics);

/// Full job dump: name, per-task arrays, shuffle volume, counter totals.
[[nodiscard]] std::string to_json(const JobMetrics& metrics);

/// {"startup_seconds":..,"map_seconds":..,"reduce_seconds":..,
///  "total_seconds":..}
[[nodiscard]] std::string to_json(const PhaseTimes& times);

}  // namespace mrsky::mr
