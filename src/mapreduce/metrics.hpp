// Execution metrics recorded by the engine.
//
// Every map and reduce task reports what it consumed, produced, charged as
// abstract work, and how long it really took. JobMetrics is the plain-data
// interface between the (templated) engine and the (non-templated) cluster
// simulator; nothing in here depends on record types.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mrsky::mr {

struct TaskMetrics {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t work_units = 0;  ///< user-charged abstract work (see TaskContext)
  std::int64_t wall_ns = 0;      ///< measured wall time of the task body
  std::uint64_t attempts = 1;    ///< executions incl. injected-failure retries
  std::map<std::string, std::uint64_t> counters;  ///< named counters

  TaskMetrics& operator+=(const TaskMetrics& other);
};

struct JobMetrics {
  std::string job_name;
  std::vector<TaskMetrics> map_tasks;     ///< combine work is charged to its map task
  std::vector<TaskMetrics> reduce_tasks;
  std::uint64_t shuffle_records = 0;      ///< records crossing the shuffle
  std::uint64_t shuffle_bytes = 0;        ///< approximate payload volume
  std::int64_t shuffle_ns = 0;            ///< wall time of the bucket-build stage

  [[nodiscard]] TaskMetrics map_total() const;
  [[nodiscard]] TaskMetrics reduce_total() const;
  [[nodiscard]] std::uint64_t total_work_units() const;
  [[nodiscard]] double total_wall_seconds() const;
  /// All named counters across map and reduce tasks, summed by name.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_totals() const;
};

}  // namespace mrsky::mr
