// Execution metrics recorded by the engine.
//
// Every map and reduce task reports what it consumed, produced, charged as
// abstract work, and how long it really took. JobMetrics is the plain-data
// interface between the (templated) engine and the (non-templated) cluster
// simulator; nothing in here depends on record types.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mrsky::mr {

/// One failed task attempt — the record the engine keeps when an attempt dies
/// mid-task (injected crash) or hits a record its user function throws on.
/// Events are recorded in task order, so they are identical under
/// kSequential and kThreads.
struct TaskFailureEvent {
  std::uint32_t phase = 0;              ///< 0 = map, 1 = reduce
  std::uint64_t task = 0;               ///< task index within its phase
  std::uint64_t attempt = 0;            ///< 0-based attempt that failed
  std::uint64_t records_processed = 0;  ///< input records consumed before dying
  std::uint64_t work_units_wasted = 0;  ///< work charged by the lost attempt
  bool injected = false;                ///< true = injected crash, false = bad record
  std::uint64_t bad_record = 0;         ///< split-local index (bad-record events only)
};

/// Job-level fault-tolerance ledger: what failure handling cost and what it
/// isolated. Derived from per-task metrics by JobMetrics::failure_report().
struct FailureReport {
  std::uint64_t tasks_retried = 0;      ///< tasks that needed more than one attempt
  std::uint64_t wasted_records = 0;     ///< records executed by discarded attempts
  std::uint64_t wasted_work_units = 0;  ///< work charged by discarded attempts
  std::uint64_t records_skipped = 0;    ///< bad records isolated by skip mode
  std::vector<TaskFailureEvent> events; ///< per-attempt detail, task order

  [[nodiscard]] bool empty() const noexcept {
    return tasks_retried == 0 && records_skipped == 0 && events.empty();
  }

  /// Pipeline aggregation (e.g. job 1 + every merge round).
  FailureReport& operator+=(const FailureReport& other) {
    tasks_retried += other.tasks_retried;
    wasted_records += other.wasted_records;
    wasted_work_units += other.wasted_work_units;
    records_skipped += other.records_skipped;
    events.insert(events.end(), other.events.begin(), other.events.end());
    return *this;
  }
};

struct TaskMetrics {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t work_units = 0;  ///< user-charged abstract work (see TaskContext)
  std::int64_t wall_ns = 0;      ///< measured wall time of the task body
  std::uint64_t attempts = 1;    ///< executions incl. injected-failure retries
  std::map<std::string, std::uint64_t> counters;  ///< named counters
  std::uint64_t records_skipped = 0;    ///< bad records isolated (skip mode)
  std::uint64_t wasted_records = 0;     ///< records consumed by failed attempts
  std::uint64_t wasted_work_units = 0;  ///< work charged by failed attempts
  std::vector<TaskFailureEvent> failure_events;  ///< one per failed attempt

  TaskMetrics& operator+=(const TaskMetrics& other);
};

struct JobMetrics {
  std::string job_name;
  std::vector<TaskMetrics> map_tasks;     ///< combine work is charged to its map task
  std::vector<TaskMetrics> reduce_tasks;
  std::uint64_t shuffle_records = 0;      ///< records crossing the shuffle
  std::uint64_t shuffle_bytes = 0;        ///< approximate payload volume
  std::int64_t shuffle_ns = 0;            ///< wall time of the bucket-build stage
  std::uint64_t shuffle_spilled_bytes = 0;  ///< bytes written to spill files
  std::uint64_t shuffle_spill_files = 0;    ///< map tasks that spilled

  // Block-input accounting, set by pipelines that stream a DatasetSource
  // (zero for in-memory runs): payload volume actually read vs. skipped
  // whole because the block's min corner was dominated.
  std::uint64_t blocks_pruned = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_pruned = 0;

  [[nodiscard]] TaskMetrics map_total() const;
  [[nodiscard]] TaskMetrics reduce_total() const;
  [[nodiscard]] std::uint64_t total_work_units() const;
  [[nodiscard]] double total_wall_seconds() const;
  /// All named counters across map and reduce tasks, summed by name.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_totals() const;
  /// Aggregated fault-tolerance ledger across both phases (events in task
  /// order: all map tasks, then all reduce tasks).
  [[nodiscard]] FailureReport failure_report() const;
};

}  // namespace mrsky::mr
