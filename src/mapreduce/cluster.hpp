// Deterministic cluster simulation — DESIGN.md §2's substitution for the
// paper's 4–32 node Hadoop cluster.
//
// The engine (job.hpp) records what each task actually did: records read,
// records emitted, abstract work units charged (dominance tests, for the
// skyline jobs). This module converts those measurements into simulated
// wall-clock per phase for a cluster of S servers:
//
//   task cost  = task_startup
//              + records_in  × per-record cost (map or reduce side)
//              + work_units  × seconds_per_work_unit
//   phase time = LPT-schedule makespan of all phase tasks over S × slots lanes
//   job time   = job_startup + map phase + reduce phase
//
// The per-record and per-work constants default to values calibrated so the
// headline experiment (QWS-like data, N = 100k, d = 10) lands in the same
// hundreds-of-seconds regime as the paper's Hadoop numbers; DESIGN.md
// promises shape fidelity, not absolute-seconds fidelity, and the shapes
// (who wins, saturation beyond ~24 servers, Map-vs-Reduce attribution) come
// from the measured work distribution, not from the constants.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/mapreduce/metrics.hpp"

namespace mrsky::mr {

/// One node-loss event: `server` dies at `time_seconds`, measured from the
/// start of the job's map phase (job startup excluded). Negative times mean
/// the server is already dead when the job begins. The server stays dead for
/// the rest of the job — Hadoop 0.20's JobTracker blacklists a TaskTracker
/// that stops heartbeating and never hands it work again within the job.
struct NodeFailure {
  std::size_t server = 0;
  double time_seconds = 0.0;
};

struct ClusterModel {
  std::size_t servers = 8;
  std::size_t map_slots_per_server = 2;     ///< Hadoop default: 2 map slots/node
  std::size_t reduce_slots_per_server = 2;  ///< and 2 reduce slots/node

  double seconds_per_work_unit = 1e-5;        ///< one dominance test (JVM-era cost)
  double seconds_per_map_record = 2e-3;       ///< HDFS read + deserialize + map + emit
  double seconds_per_shuffle_record = 1e-4;   ///< serialize + network + merge-sort
  double job_startup_seconds = 20.0;          ///< job submission + JVM spin-up
  double task_startup_seconds = 1.0;          ///< per-task scheduling overhead

  /// Per-server relative speed (> 0). Empty = homogeneous cluster (1.0 for
  /// every server). Shorter than `servers`: missing entries default to 1.0.
  /// A slot on server i finishes a cost-c task in c / speed[i] seconds.
  std::vector<double> server_speed_factors;

  /// Hadoop-style speculative execution: while a phase's longest-running
  /// task is still the bottleneck, a backup copy is launched on the lane
  /// that can finish it earliest, and the task completes at whichever copy
  /// wins. Effective against stragglers; backups do consume lane time.
  bool speculative_execution = false;

  /// Node-loss events applied by lpt_schedule_with_failures / trace_job.
  /// Hadoop semantics: tasks in flight on the dead server re-schedule onto
  /// surviving lanes, and completed *map* tasks whose output lived on that
  /// server re-execute before reduce can proceed (map output is stored on
  /// the mapper's local disk, not in HDFS); completed reduce output is safe.
  std::vector<NodeFailure> node_failures;

  [[nodiscard]] std::size_t map_lanes() const noexcept { return servers * map_slots_per_server; }
  [[nodiscard]] std::size_t reduce_lanes() const noexcept {
    return servers * reduce_slots_per_server;
  }

  /// Speed of server `index` under the factors table (1.0 when unset).
  [[nodiscard]] double server_speed(std::size_t index) const;

  /// Copy of this model with the last `count` servers slowed by `slowdown`
  /// (>= 1): a straggler-injection helper for robustness studies.
  [[nodiscard]] ClusterModel with_stragglers(std::size_t count, double slowdown) const;
};

/// Simulated wall-clock of one job's phases on a modelled cluster.
struct PhaseTimes {
  double startup_seconds = 0.0;
  double map_seconds = 0.0;
  double reduce_seconds = 0.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return startup_seconds + map_seconds + reduce_seconds;
  }

  PhaseTimes& operator+=(const PhaseTimes& other) noexcept;
};

/// Longest-processing-time-first makespan of `task_costs` over `lanes`
/// parallel lanes. Returns 0 for no tasks; requires lanes >= 1.
[[nodiscard]] double lpt_makespan(std::span<const double> task_costs, std::size_t lanes);

/// One scheduled task in a simulated phase. With node failures, the fields
/// describe the task's *final* (surviving) execution.
struct TaskPlacement {
  std::size_t task_index = 0;  ///< index into the phase's task list
  std::size_t lane = 0;        ///< slot the task ran on
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  bool speculated = false;     ///< completed via a speculative backup copy
  bool reexecuted = false;     ///< re-ran because a node loss took its work
};

/// A full phase schedule: LPT placement of tasks over (possibly
/// heterogeneous) lanes. Tasks are assigned longest-first to the lane that
/// finishes them earliest.
struct PhaseSchedule {
  std::vector<TaskPlacement> placements;  ///< one per task
  double makespan_seconds = 0.0;
  std::vector<double> lane_speeds;        ///< lanes used by this schedule
};

/// Schedules `task_costs` over lanes running at `lane_speeds` (> 0 each).
[[nodiscard]] PhaseSchedule lpt_schedule(std::span<const double> task_costs,
                                         std::span<const double> lane_speeds);

/// lpt_schedule followed by speculative backup rounds (see
/// ClusterModel::speculative_execution): repeatedly caps the makespan task
/// at the earliest finish a backup copy on another lane could achieve.
[[nodiscard]] PhaseSchedule lpt_schedule_speculative(std::span<const double> task_costs,
                                                     std::span<const double> lane_speeds);

/// lpt_schedule under node-loss events. Lanes are grouped server-major
/// (`slots_per_server` consecutive lanes per server, the layout trace_job
/// builds); `failures` use job-relative times and `phase_start_seconds`
/// shifts them into this phase's clock — a failure at or before phase start
/// means the server never runs a task here, one at or after the unaffected
/// makespan leaves the phase untouched. When a server dies mid-phase its
/// in-flight tasks re-schedule onto surviving lanes from the failure time;
/// with `lose_completed_outputs` (map phase: output lives on local disk)
/// its completed tasks re-execute too. Rescheduled tasks that had already
/// started are marked `reexecuted`. `speculative` additionally runs backup
/// rounds (as lpt_schedule_speculative) restricted to surviving lanes.
/// Fails if every server dies before the phase can finish.
[[nodiscard]] PhaseSchedule lpt_schedule_with_failures(std::span<const double> task_costs,
                                                       std::span<const double> lane_speeds,
                                                       std::size_t slots_per_server,
                                                       std::span<const NodeFailure> failures,
                                                       double phase_start_seconds,
                                                       bool lose_completed_outputs,
                                                       bool speculative);

/// Full trace of a job's simulated execution (map + reduce schedules).
struct ScheduleTrace {
  PhaseSchedule map;
  PhaseSchedule reduce;
  PhaseTimes times;
};

/// Like simulate_job but also returns the per-task placements — the input of
/// Gantt-style visualisation (see examples/cluster_trace).
[[nodiscard]] ScheduleTrace trace_job(const JobMetrics& metrics, const ClusterModel& model);

/// Converts one job's measured metrics into simulated phase times.
[[nodiscard]] PhaseTimes simulate_job(const JobMetrics& metrics, const ClusterModel& model);

/// Sum over a multi-job pipeline (e.g. the skyline driver's two jobs).
[[nodiscard]] PhaseTimes simulate_pipeline(std::span<const JobMetrics> jobs,
                                           const ClusterModel& model);

}  // namespace mrsky::mr
