#include "src/mapreduce/trace_export.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace mrsky::mr {

namespace {

constexpr double kNsPerSecond = 1e9;

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * kNsPerSecond));
}

/// Lane 0 is the job timeline; cluster slots map to lanes 1..L so a phase's
/// placements never collide with the per-job spans.
void append_phase(common::TraceRecorder& recorder, const PhaseSchedule& schedule,
                  const char* name, double phase_start_seconds) {
  for (const TaskPlacement& p : schedule.placements) {
    const auto id = recorder.add_span(
        name, "sim-task", common::kTracePidSimulator,
        static_cast<std::uint32_t>(p.lane + 1), to_ns(phase_start_seconds + p.start_seconds),
        to_ns(phase_start_seconds + p.end_seconds));
    recorder.add_arg_int(id, "task", static_cast<std::int64_t>(p.task_index));
    if (p.reexecuted) recorder.add_arg_int(id, "reexecuted", 1);
    if (p.speculated) recorder.add_arg_int(id, "speculated", 1);
  }
}

}  // namespace

double append_schedule_trace(common::TraceRecorder& recorder, const JobMetrics& metrics,
                             const ClusterModel& model, double start_seconds) {
  const ScheduleTrace trace = trace_job(metrics, model);

  const double map_start = start_seconds + trace.times.startup_seconds;
  const double reduce_start = map_start + trace.times.map_seconds;
  const double end = reduce_start + trace.times.reduce_seconds;

  const auto job_id =
      recorder.add_span(metrics.job_name, "sim-job", common::kTracePidSimulator,
                        /*lane=*/0, to_ns(start_seconds), to_ns(end));
  recorder.add_arg_int(job_id, "map_tasks",
                       static_cast<std::int64_t>(metrics.map_tasks.size()));
  recorder.add_arg_int(job_id, "reduce_tasks",
                       static_cast<std::int64_t>(metrics.reduce_tasks.size()));

  append_phase(recorder, trace.map, "map", map_start);
  append_phase(recorder, trace.reduce, "reduce", reduce_start);

  recorder.set_lane_name(common::kTracePidSimulator, 0, "jobs");
  const std::size_t lanes =
      std::max(trace.map.lane_speeds.size(), trace.reduce.lane_speeds.size());
  const std::size_t slots =
      std::max(model.map_slots_per_server, model.reduce_slots_per_server);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t server = slots == 0 ? 0 : lane / slots;
    recorder.set_lane_name(common::kTracePidSimulator, static_cast<std::uint32_t>(lane + 1),
                           "server " + std::to_string(server) + " slot " +
                               std::to_string(slots == 0 ? 0 : lane % slots));
  }
  return end;
}

double append_pipeline_trace(common::TraceRecorder& recorder, std::span<const JobMetrics> jobs,
                             const ClusterModel& model) {
  double t = 0.0;
  for (const JobMetrics& job : jobs) {
    t = append_schedule_trace(recorder, job, model, t);
  }
  return t;
}

}  // namespace mrsky::mr
