// Figure 6 — Map/Reduce time breakdown of MR-Angle vs cluster size.
//
// Paper setup: N = 100,000 services, d = 10 attributes, servers swept
// 4 → 32 in steps of 4; the stacked bars show Map time and Reduce time.
// Expected shape: total decreases sub-linearly, the improvement saturates
// beyond ~24 servers, and the drop comes mostly from the Map phase while the
// Reduce phase (single-reducer global merge) stays roughly constant.
//
// Each server count is a fresh pipeline run because the paper ties the
// partition count to the cluster size (Np = 2 × servers).
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto server_list = args.get_int_list("servers", {4, 8, 12, 16, 20, 24, 28, 32});
  const std::string trace_out = args.get_string("trace-out", "");
  common::TraceRecorder recorder;
  common::TraceRecorder* const trace = trace_out.empty() ? nullptr : &recorder;

  std::cout << "Figure 6 reproduction — MR-Angle scalability breakdown\n"
            << "N=" << n << ", d=" << dim << ", partitions=2x servers\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  common::Table table({"servers", "map_s", "reduce_s", "startup_s", "total_s", "vs_4_servers"});
  double total_at_4 = 0.0;
  for (std::int64_t servers : server_list) {
    core::MRSkylineConfig config;
    config.scheme = part::Scheme::kAngular;
    const auto cell = bench::run_cell(ps, config, static_cast<std::size_t>(servers), trace);
    if (total_at_4 == 0.0) total_at_4 = cell.times.total_seconds();
    table.add_row({common::Table::fmt(static_cast<int>(servers)),
                   common::Table::fmt(cell.times.map_seconds, 2),
                   common::Table::fmt(cell.times.reduce_seconds, 2),
                   common::Table::fmt(cell.times.startup_seconds, 1),
                   common::Table::fmt(cell.times.total_seconds(), 2),
                   common::Table::fmt(cell.times.total_seconds() / total_at_4, 2) + "x"});
  }
  if (trace != nullptr) {
    recorder.write_chrome_json(trace_out);
    std::cerr << "trace written to " << trace_out << " (" << recorder.spans().size()
              << " spans; load in Perfetto or chrome://tracing)\n";
  }
  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
    return 0;
  }
  table.print(std::cout, "Fig6 MR-Angle breakdown");
  std::cout << "\nExpected shape (paper): sub-linear decrease saturating past ~24 servers;\n"
               "Map time drives the drop, Reduce time (global merge) is roughly flat.\n";
  return 0;
}
