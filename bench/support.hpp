// Shared helpers for the figure/ablation benchmark binaries.
//
// Every bench uses the same workload construction (QWS-like, normalised,
// minimisation-oriented — the paper's dataset family) and the same
// run-then-simulate wrapper, so tables across benches are comparable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/trace.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/core/optimality.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/point_set.hpp"
#include "src/mapreduce/cluster.hpp"

namespace mrsky::bench {

/// Default seed: all benches share it so tables line up across binaries.
inline constexpr std::uint64_t kDefaultSeed = 2012;  // IPDPSW year

/// The paper's workload: N QWS-like services, d attributes, normalised and
/// cost-oriented.
[[nodiscard]] data::PointSet qws_workload(std::size_t n, std::size_t dim, std::uint64_t seed);

/// Classic benchmark distributions for the distribution ablation.
[[nodiscard]] data::PointSet synthetic_workload(data::Distribution dist, std::size_t n,
                                                std::size_t dim, std::uint64_t seed);

/// One experiment cell: pipeline result + simulated phase times + Eq. 5.
struct CellResult {
  core::MRSkylineResult run;
  mr::PhaseTimes times;
  core::OptimalityReport optimality;
};

/// Runs the full two-job pipeline and simulates it on `servers` servers.
/// With `trace` set, the real execution is span-traced (RunOptions::trace)
/// and the simulated cluster schedule is appended afterwards — the benches'
/// `--trace-out FILE` plumbing.
[[nodiscard]] CellResult run_cell(const data::PointSet& ps, core::MRSkylineConfig config,
                                  std::size_t servers,
                                  common::TraceRecorder* trace = nullptr);

/// The three paper schemes in presentation order.
[[nodiscard]] const std::vector<part::Scheme>& paper_schemes();

/// Short display name used in tables: MR-Dim / MR-Grid / MR-Angle / ...
[[nodiscard]] std::string display_name(part::Scheme scheme);

}  // namespace mrsky::bench
