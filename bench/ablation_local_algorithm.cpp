// Ablation — the local/global skyline algorithm inside the pipeline.
//
// The paper uses BNL "for its simplicity" (§II-B) in both the local stage
// and the global merge. This bench swaps in SFS (presort by a monotone
// score) and two-way divide-&-conquer, measuring dominance tests and
// simulated time. All three must return the identical skyline (checked).
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/error.hpp"
#include "src/common/table.hpp"
#include "src/skyline/verify.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — local skyline algorithm (paper: BNL)\n"
            << "N=" << n << ", d=" << dim << ", MR-Angle pipeline\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  common::Table table({"algorithm", "total_s", "dominance_tests", "skyline", "same_result"});
  data::PointSet reference(1);
  for (skyline::Algorithm algo : {skyline::Algorithm::kBnl, skyline::Algorithm::kSfs,
                                  skyline::Algorithm::kDivideConquer}) {
    core::MRSkylineConfig config;
    config.scheme = part::Scheme::kAngular;
    config.local_algorithm = algo;
    const auto cell = bench::run_cell(ps, config, servers);
    bool same = true;
    if (algo == skyline::Algorithm::kBnl) {
      reference = cell.run.skyline;
    } else {
      same = skyline::same_ids(reference, cell.run.skyline);
    }
    table.add_row({skyline::to_string(algo), common::Table::fmt(cell.times.total_seconds(), 2),
                   common::Table::fmt(cell.run.partition_job.total_work_units() +
                                      cell.run.merge_job().total_work_units()),
                   common::Table::fmt(cell.run.skyline.size()), same ? "yes" : "NO"});
  }
  table.print(std::cout, "Local-algorithm ablation");
  return 0;
}
