// QueryEngine serving throughput — cold vs warm queries/sec.
//
// Serving scenario (paper §II): a resident registry answers repeated skyline
// queries between service insertions. This bench builds one QueryEngine over
// the Fig. 5 workload (QWS-like, normalised) and measures, per query kind,
// the cold cost (first execution: pipeline run / extension kernel, including
// the one-off partition fit) against the warm cost (the same query repeated,
// served from the LRU result cache). The warm/cold ratio is the engine's
// whole reason to exist, so `--check --min-warm-speedup R` turns the ratio
// into an exit code for CI (scripts/ci_perf_smoke.sh gates on 5x).
//
//   bench_query_engine --cardinality 20000 --dim 6 --repeats 5
//       --json experiment_results/query_engine.json --check --min-warm-speedup 5
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/error.hpp"
#include "src/common/table.hpp"
#include "src/service/query_engine.hpp"

using namespace mrsky;

namespace {

double qps(double ns) { return ns > 0.0 ? 1e9 / ns : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 20000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 6));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto repeats = std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("repeats", 5)));
  const bool check = args.get_bool("check", false);
  const double min_speedup = args.get_double("min-warm-speedup", 5.0);
  const std::string json_out = args.get_string("json", "");

  service::QueryEngineOptions options;
  options.config.servers = servers;
  service::QueryEngine engine(bench::qws_workload(n, dim, seed), options);

  std::cout << "QueryEngine throughput — cold (first execution) vs warm (result cache)\n"
            << "workload: QWS-like N=" << n << " d=" << dim << ", scheme "
            << part::to_string(options.config.scheme) << ", " << servers << " servers\n\n";

  std::vector<double> weights(dim, 1.0 / static_cast<double>(dim));
  std::vector<std::size_t> half(dim / 2 == 0 ? 1 : dim / 2);
  for (std::size_t i = 0; i < half.size(); ++i) half[i] = i;
  const std::vector<service::Query> queries = {
      service::SkylineQuery{},
      service::SubspaceQuery{half},
      service::KSkybandQuery{2},
      service::RepresentativeQuery{10},
      service::TopKWeightedQuery{weights, 10},
  };

  common::Table table({"query", "points", "cold_ms", "warm_us", "speedup", "cold_qps", "warm_qps"});
  std::string kinds_json;
  double worst_speedup = -1.0;
  for (const auto& query : queries) {
    const auto cold = engine.execute(query);
    MRSKY_REQUIRE(!cold.metrics.cache_hit, "first execution must be a cache miss");
    double warm_total_ns = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto warm = engine.execute(query);
      MRSKY_REQUIRE(warm.metrics.cache_hit, "repeated query must be a cache hit");
      warm_total_ns += static_cast<double>(warm.metrics.wall_ns);
    }
    const auto cold_ns = static_cast<double>(cold.metrics.wall_ns);
    const double warm_ns = std::max(1.0, warm_total_ns / static_cast<double>(repeats));
    const double speedup = cold_ns / warm_ns;
    if (worst_speedup < 0.0 || speedup < worst_speedup) worst_speedup = speedup;

    table.add_row({service::query_signature(query),
                   common::Table::fmt(cold.metrics.result_points),
                   common::Table::fmt(cold_ns / 1e6, 3), common::Table::fmt(warm_ns / 1e3, 2),
                   common::Table::fmt(speedup, 1) + "x", common::Table::fmt(qps(cold_ns), 1),
                   common::Table::fmt(qps(warm_ns), 1)});
    if (!kinds_json.empty()) kinds_json += ",";
    kinds_json += "{\"query\":\"" + service::query_signature(query) +
                  "\",\"kind\":\"" + service::query_kind(query) +
                  "\",\"points\":" + std::to_string(cold.metrics.result_points) +
                  ",\"cold_ns\":" + std::to_string(cold.metrics.wall_ns) +
                  ",\"warm_ns\":" + std::to_string(static_cast<std::int64_t>(warm_ns)) +
                  ",\"speedup\":" + std::to_string(speedup) + "}";
  }
  table.print(std::cout, "cold vs warm, " + std::to_string(repeats) + " warm repeats");

  const auto& stats = engine.stats();
  std::cout << "\nqueries: " << stats.queries << "  cache hits: " << stats.cache_hits
            << "  pipeline runs: " << stats.pipeline_runs
            << "  fits computed/reused: " << stats.fits_computed << "/" << stats.fit_reuses
            << "\nworst warm speedup: " << worst_speedup << "x\n";

  if (!json_out.empty()) {
    std::ofstream file(json_out);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + json_out);
    file << "{\"workload\":{\"cardinality\":" << n << ",\"dim\":" << dim
         << ",\"servers\":" << servers << ",\"seed\":" << seed << ",\"repeats\":" << repeats
         << "},\"kinds\":[" << kinds_json << "],\"worst_speedup\":" << worst_speedup
         << ",\"stats\":{\"queries\":" << stats.queries << ",\"cache_hits\":" << stats.cache_hits
         << ",\"pipeline_runs\":" << stats.pipeline_runs
         << ",\"fits_computed\":" << stats.fits_computed
         << ",\"fit_reuses\":" << stats.fit_reuses << "}}\n";
    std::cout << "json written to " << json_out << "\n";
  }

  if (check && worst_speedup < min_speedup) {
    std::cerr << "FAIL: worst warm speedup " << worst_speedup << "x below required "
              << min_speedup << "x\n";
    return 1;
  }
  if (check) std::cout << "CHECK OK: every warm speedup >= " << min_speedup << "x\n";
  return 0;
}
