#include "bench/support.hpp"

#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/mapreduce/trace_export.hpp"

namespace mrsky::bench {

data::PointSet qws_workload(std::size_t n, std::size_t dim, std::uint64_t seed) {
  data::QwsLikeGenerator gen(dim, seed);
  return data::normalize_min_max(gen.generate_oriented(n));
}

data::PointSet synthetic_workload(data::Distribution dist, std::size_t n, std::size_t dim,
                                  std::uint64_t seed) {
  return data::generate(dist, n, dim, seed);
}

CellResult run_cell(const data::PointSet& ps, core::MRSkylineConfig config, std::size_t servers,
                    common::TraceRecorder* trace) {
  config.servers = servers;
  config.run_options.trace = trace;
  CellResult cell;
  cell.run = core::run_mr_skyline(ps, config);
  mr::ClusterModel model;
  model.servers = servers;
  cell.times = cell.run.simulate(model);
  cell.optimality = core::local_skyline_optimality(cell.run.local_skylines, cell.run.skyline);
  if (trace != nullptr) {
    std::vector<mr::JobMetrics> jobs;
    jobs.reserve(1 + cell.run.merge_rounds.size());
    jobs.push_back(cell.run.partition_job);
    jobs.insert(jobs.end(), cell.run.merge_rounds.begin(), cell.run.merge_rounds.end());
    mr::append_pipeline_trace(*trace, jobs, model);
  }
  return cell;
}

const std::vector<part::Scheme>& paper_schemes() {
  static const std::vector<part::Scheme> schemes = {
      part::Scheme::kDimensional, part::Scheme::kGrid, part::Scheme::kAngular};
  return schemes;
}

std::string display_name(part::Scheme scheme) {
  switch (scheme) {
    case part::Scheme::kDimensional: return "MR-Dim";
    case part::Scheme::kGrid: return "MR-Grid";
    case part::Scheme::kAngular: return "MR-Angle";
    case part::Scheme::kAngularEquiDepth: return "MR-Angle-ED";
    case part::Scheme::kAngularRadial: return "MR-Angle-R";
    case part::Scheme::kPivot: return "MR-Pivot";
    case part::Scheme::kRandom: return "MR-Random";
    case part::Scheme::kAuto: return "MR-Auto";
  }
  return "?";
}

}  // namespace mrsky::bench
