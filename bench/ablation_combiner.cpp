// Ablation — map-side combining (this library's extension over Algorithm 1).
//
// The paper's Algorithm 1 computes local skylines only in the reduce stage,
// so every point crosses the shuffle. A Hadoop-style combiner that computes
// partial local skylines inside each map task filters most points before the
// shuffle. This bench quantifies the win: shuffle records, reduce-stage
// dominance work, and simulated time for both configurations of each scheme.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — map-side combiner (extension; Algorithm 1 ships without one)\n"
            << "N=" << n << ", d=" << dim << ", cluster=" << servers << " servers\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  common::Table table({"method", "combiner", "shuffle_records", "reduce_work", "total_s"});
  for (part::Scheme scheme : bench::paper_schemes()) {
    for (bool combiner : {false, true}) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      config.use_combiner = combiner;
      const auto cell = bench::run_cell(ps, config, servers);
      table.add_row({bench::display_name(scheme), combiner ? "on" : "off",
                     common::Table::fmt(cell.run.partition_job.shuffle_records),
                     common::Table::fmt(cell.run.partition_job.reduce_total().work_units),
                     common::Table::fmt(cell.times.total_seconds(), 2)});
    }
  }
  table.print(std::cout, "Combiner ablation");
  std::cout << "\nExpected: the combiner removes most shuffle records and most reduce-stage\n"
               "dominance work for every scheme, without changing the skyline.\n";
  return 0;
}
