// Figure 5 — MapReduce skyline processing time vs attribute dimension.
//
// Paper setup: QWS-extended workload, dimensions 2..10, three methods.
//   Fig. 5(a): N = 1,000   (run with --cardinality 1000, the default here)
//   Fig. 5(b): N = 100,000 (run with --cardinality 100000)
// Output: one row per (dimension, method) with simulated Map/Reduce/total
// seconds on the modelled cluster, plus the slowdown of each method relative
// to MR-Angle — the paper's headline is 1.7× (grid) and 2.3× (dim) at
// N = 100k, d = 10. Work units and merge-input sizes are printed alongside
// because they are the mechanism behind the time gaps.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 1000));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto dims = args.get_int_list("dims", {2, 4, 6, 8, 10});
  const std::string trace_out = args.get_string("trace-out", "");
  common::TraceRecorder recorder;
  common::TraceRecorder* const trace = trace_out.empty() ? nullptr : &recorder;

  std::cout << "Figure 5 reproduction — processing time vs dimension\n"
            << "cardinality N=" << n << ", cluster=" << servers
            << " servers, partitions=2x servers (paper default)\n\n";

  common::Table table({"dim", "method", "map_s", "reduce_s", "total_s", "vs_MR-Angle",
                       "dominance_tests", "merge_input"});
  for (std::int64_t d : dims) {
    std::vector<bench::CellResult> cells;
    const auto ps = bench::qws_workload(n, static_cast<std::size_t>(d), seed);
    for (part::Scheme scheme : bench::paper_schemes()) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      cells.push_back(bench::run_cell(ps, config, servers, trace));
    }
    const double angle_total = cells.back().times.total_seconds();
    for (std::size_t s = 0; s < cells.size(); ++s) {
      const auto& cell = cells[s];
      table.add_row({common::Table::fmt(static_cast<int>(d)),
                     bench::display_name(bench::paper_schemes()[s]),
                     common::Table::fmt(cell.times.map_seconds, 2),
                     common::Table::fmt(cell.times.reduce_seconds, 2),
                     common::Table::fmt(cell.times.total_seconds(), 2),
                     common::Table::fmt(cell.times.total_seconds() / angle_total, 2) + "x",
                     common::Table::fmt(cell.run.partition_job.total_work_units() +
                                        cell.run.merge_job().total_work_units()),
                     common::Table::fmt(cell.optimality.local_total)});
    }
  }
  if (trace != nullptr) {
    recorder.write_chrome_json(trace_out);
    std::cerr << "trace written to " << trace_out << " (" << recorder.spans().size()
              << " spans; load in Perfetto or chrome://tracing)\n";
  }
  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
    return 0;
  }
  table.print(std::cout, "Fig5 N=" + std::to_string(n));
  std::cout << "\nExpected shape (paper): MR-Angle fastest at every dimension; the gap\n"
               "grows with N and d. Absolute seconds are simulated (DESIGN.md #2) and\n"
               "are not comparable to the paper's Hadoop wall-clock.\n";
  return 0;
}
