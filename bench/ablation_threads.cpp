// Ablation — sequential vs thread-pooled engine execution.
//
// Runs the full two-job pipeline (the Fig. 5 workload: QWS-like, normalised,
// MR-Angle partitioning) end to end under ExecutionMode::kSequential and
// under kThreads at increasing worker counts, and reports the real in-process
// wall-clock speedup. This is the one table in the bench suite measuring the
// host's actual parallelism rather than the simulated cluster: it quantifies
// what the persistent pool + parallel shuffle buy. Output and counters are
// bitwise identical across every row (asserted here), so the speedup is pure
// execution, not a different computation.
//
// Numbers scale with the host: on a single-core CI runner every row is ~1x;
// on an 8-way machine the 8-thread row is expected to clear 2x. A tree merge
// (--fan_in) keeps the merge stage parallel too; with the paper's default
// single-reducer merge the serial tail caps the achievable speedup.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"
#include "src/common/timer.hpp"
#include "src/dataset/point_set.hpp"

using namespace mrsky;

namespace {

core::MRSkylineConfig base_config(std::size_t servers, std::size_t fan_in, bool combiner) {
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = servers;
  config.merge_fan_in = fan_in;
  config.use_combiner = combiner;
  return config;
}

/// Best-of-`repeats` wall seconds for one configuration.
double measure(const data::PointSet& ps, const core::MRSkylineConfig& config, int repeats,
               core::MRSkylineResult* out) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    common::Timer timer;
    auto result = core::run_mr_skyline(ps, config);
    const double s = timer.elapsed_seconds();
    if (r == 0 || s < best) best = s;
    if (out != nullptr) *out = std::move(result);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 60000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 8));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto fan_in = static_cast<std::size_t>(args.get_int("fan_in", 4));
  const bool combiner = args.get_bool("combiner", true);
  const int repeats = static_cast<int>(args.get_int("repeats", 2));
  const auto thread_counts = args.get_int_list("threads", {2, 4, 8});

  std::cout << "Threading ablation — sequential vs kThreads on the Fig. 5 workload\n"
            << "N=" << n << ", d=" << dim << ", cluster=" << servers
            << " servers, merge fan-in=" << fan_in << ", combiner=" << (combiner ? "on" : "off")
            << ", hardware threads=" << common::ThreadPool::default_concurrency() << "\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  const auto config = base_config(servers, fan_in, combiner);

  core::MRSkylineResult seq_result;
  const double seq_seconds = measure(ps, config, repeats, &seq_result);

  common::Table table({"mode", "threads", "wall_s", "speedup", "skyline", "identical"});
  table.add_row({"sequential", "1", common::Table::fmt(seq_seconds, 3), "1.00x",
                 common::Table::fmt(seq_result.skyline.size()), "-"});

  for (std::int64_t t : thread_counts) {
    core::MRSkylineConfig threaded = config;
    threaded.run_options.mode = mr::ExecutionMode::kThreads;
    threaded.run_options.num_threads = static_cast<std::size_t>(t);
    core::MRSkylineResult par_result;
    const double par_seconds = measure(ps, threaded, repeats, &par_result);
    const bool identical =
        par_result.skyline == seq_result.skyline &&
        par_result.partition_job.counter_totals() ==
            seq_result.partition_job.counter_totals() &&
        par_result.partition_job.shuffle_records == seq_result.partition_job.shuffle_records;
    table.add_row({"threads", common::Table::fmt(static_cast<int>(t)),
                   common::Table::fmt(par_seconds, 3),
                   common::Table::fmt(seq_seconds / par_seconds, 2) + "x",
                   common::Table::fmt(par_result.skyline.size()),
                   identical ? "yes" : "NO"});
    if (!identical) {
      std::cerr << "ERROR: threaded run diverged from sequential output\n";
      return 1;
    }
  }

  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
    return 0;
  }
  table.print(std::cout, "seq vs threads, N=" + std::to_string(n));
  std::cout << "\nshuffle_ns (job 1, sequential run): " << seq_result.partition_job.shuffle_ns
            << "\nSpeedup is bounded by the host's cores and the serial merge tail; the\n"
               "'identical' column proves mode changes never change results.\n";
  return 0;
}
