// Ablation — data distribution sensitivity.
//
// The paper evaluates only its QWS-extended dataset. This bench re-runs the
// scheme comparison on the classic skyline benchmark distributions
// (Börzsönyi et al.): independent, correlated, anti-correlated, clustered,
// alongside the QWS-like workload, to show where angular partitioning's
// advantage is largest (direction-diverse data) and where every scheme
// collapses to the same cost (correlated data with a tiny skyline).
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 50000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 6));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — data distribution\n"
            << "N=" << n << ", d=" << dim << ", cluster=" << servers << " servers\n\n";

  common::Table table({"distribution", "method", "total_s", "dominance_tests", "skyline",
                       "merge_input", "optimality"});

  auto add_rows = [&](const std::string& label, const data::PointSet& ps) {
    for (part::Scheme scheme : bench::paper_schemes()) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      const auto cell = bench::run_cell(ps, config, servers);
      table.add_row({label, bench::display_name(scheme),
                     common::Table::fmt(cell.times.total_seconds(), 2),
                     common::Table::fmt(cell.run.partition_job.total_work_units() +
                                        cell.run.merge_job().total_work_units()),
                     common::Table::fmt(cell.run.skyline.size()),
                     common::Table::fmt(cell.optimality.local_total),
                     common::Table::fmt(cell.optimality.mean_optimality, 3)});
    }
  };

  for (data::Distribution dist :
       {data::Distribution::kIndependent, data::Distribution::kCorrelated,
        data::Distribution::kAnticorrelated, data::Distribution::kClustered}) {
    add_rows(data::to_string(dist), bench::synthetic_workload(dist, n, dim, seed));
  }
  add_rows("qws-like", bench::qws_workload(n, dim, seed));

  table.print(std::cout, "Distribution ablation");
  return 0;
}
