// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// MapReduce pipeline: dominance tests, the sequential skyline algorithms,
// the hyperspherical transform, and partition assignment.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/support.hpp"
#include "src/geometry/hyperspherical.hpp"
#include "src/partition/angular.hpp"
#include "src/partition/dimensional.hpp"
#include "src/partition/grid.hpp"
#include "src/spatial/bbs.hpp"
#include "src/spatial/rtree.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/dominance.hpp"
#include "src/skyline/dominance_block.hpp"

using namespace mrsky;

namespace {

data::PointSet workload(std::size_t n, std::size_t dim) {
  return bench::qws_workload(n, dim, bench::kDefaultSeed);
}

void BM_DominanceTest(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(1024, dim);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool result = skyline::dominates(ps.point(i % 1024), ps.point((i + 511) % 1024));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DominanceTest)->Arg(2)->Arg(4)->Arg(10);

void BM_CompareThreeWay(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(1024, dim);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto rel = skyline::compare(ps.point(i % 1024), ps.point((i + 511) % 1024));
    benchmark::DoNotOptimize(rel);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompareThreeWay)->Arg(2)->Arg(10);

// ---- Scalar-vs-block dominance kernel (run via scripts/ci_perf_smoke.sh
// with --benchmark_out to land machine-readable JSON in experiment_results/).
// Both variants scan one candidate against a full 512-point window — the BNL
// survivor case, where no early dominator cuts the scan short — so the ratio
// isolates kernel throughput from algorithmic early exits.

void BM_DominanceWindowScalar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWindow = 512;
  const auto ps = workload(kWindow + 256, dim);
  std::vector<std::size_t> window(kWindow);
  for (std::size_t w = 0; w < kWindow; ++w) window[w] = w;
  std::size_t c = 0;
  for (auto _ : state) {
    const auto p = ps.point(kWindow + c % 256);
    unsigned acc = 0;
    for (std::size_t w : window) {
      acc += static_cast<unsigned>(skyline::compare(p, ps.point(w)));
    }
    benchmark::DoNotOptimize(acc);
    ++c;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
  state.SetLabel("pairs/s");
}
BENCHMARK(BM_DominanceWindowScalar)->Arg(4)->Arg(9);

void BM_DominanceWindowBlock(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWindow = 512;
  const auto ps = workload(kWindow + 256, dim);
  skyline::TiledWindow window(dim);
  for (std::size_t w = 0; w < kWindow; ++w) window.push_back(ps, w);
  std::size_t c = 0;
  for (auto _ : state) {
    const auto p = ps.point(kWindow + c % 256);
    std::uint32_t acc = 0;
    for (std::size_t t = 0; t < window.tiles(); ++t) {
      const skyline::TileMasks m = skyline::compare_block(p.data(), window.tile_data(t), dim);
      acc += m.lt ^ m.gt;
    }
    benchmark::DoNotOptimize(acc);
    ++c;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
  state.SetLabel(skyline::compare_block_simd_active() ? "pairs/s avx2" : "pairs/s scalar-tile");
}
BENCHMARK(BM_DominanceWindowBlock)->Arg(4)->Arg(9);

void BM_DominatorProbeBlock(benchmark::State& state) {
  // The one-directional probe (SFS / D&C cross-filter): alive-lane early exit.
  const auto dim = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWindow = 512;
  const auto ps = workload(kWindow + 256, dim);
  skyline::TiledWindow window(dim);
  for (std::size_t w = 0; w < kWindow; ++w) window.push_back(ps, w);
  std::size_t c = 0;
  for (auto _ : state) {
    const auto p = ps.point(kWindow + c % 256);
    std::uint32_t acc = 0;
    for (std::size_t t = 0; t < window.tiles(); ++t) {
      acc += skyline::dominators_in_block(p.data(), window.tile_data(t), dim);
    }
    benchmark::DoNotOptimize(acc);
    ++c;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_DominatorProbeBlock)->Arg(4)->Arg(9);

// Corner-prefilter ablation. The prefilter engages hardest in the D&C
// cross-filter, whose many small against-windows have tight corners (on qws
// data it answers over half the candidate scans); BNL is included as the
// near-worst case, where a single wide window leaves the corners loose and
// the prefilter is mostly overhead.
template <skyline::Algorithm Algo>
void BM_PrefilterAblation(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const bool enabled = state.range(1) != 0;
  const auto ps = workload(4000, dim);
  const bool saved = skyline::prefilter_enabled();
  skyline::set_prefilter_enabled(enabled);
  for (auto _ : state) {
    auto sky = skyline::compute_skyline(ps, Algo);
    benchmark::DoNotOptimize(sky);
  }
  skyline::set_prefilter_enabled(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4000);
  state.SetLabel(enabled ? "prefilter=on" : "prefilter=off");
}
BENCHMARK(BM_PrefilterAblation<skyline::Algorithm::kDivideConquer>)
    ->ArgsProduct({{4, 9}, {0, 1}});
BENCHMARK(BM_PrefilterAblation<skyline::Algorithm::kBnl>)->ArgsProduct({{4, 9}, {0, 1}});

template <skyline::Algorithm Algo>
void BM_SkylineAlgorithm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto ps = workload(n, dim);
  for (auto _ : state) {
    auto sky = skyline::compute_skyline(ps, Algo);
    benchmark::DoNotOptimize(sky);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SkylineAlgorithm<skyline::Algorithm::kBnl>)
    ->ArgsProduct({{1000, 10000}, {4, 10}});
BENCHMARK(BM_SkylineAlgorithm<skyline::Algorithm::kSfs>)
    ->ArgsProduct({{1000, 10000}, {4, 10}});
BENCHMARK(BM_SkylineAlgorithm<skyline::Algorithm::kDivideConquer>)
    ->ArgsProduct({{1000, 10000}, {4, 10}});

void BM_RTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(n, 4);
  for (auto _ : state) {
    spatial::RTree tree(ps, 16);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000);

void BM_BbsSkyline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto ps = workload(n, dim);
  const spatial::RTree tree(ps, 16);
  for (auto _ : state) {
    auto sky = spatial::bbs_skyline(tree);
    benchmark::DoNotOptimize(sky);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BbsSkyline)->ArgsProduct({{1000, 10000}, {4, 10}});

void BM_HypersphericalTransform(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(1024, dim);
  std::vector<double> phi;
  std::size_t i = 0;
  for (auto _ : state) {
    geo::angles_of(ps.point(i % 1024), phi);
    benchmark::DoNotOptimize(phi);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HypersphericalTransform)->Arg(2)->Arg(10);

template <typename Partitioner>
void BM_PartitionAssign(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(4096, dim);
  Partitioner partitioner(16);
  partitioner.fit(ps);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t p = partitioner.assign(ps.point(i % 4096));
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionAssign<part::DimensionalPartitioner>)->Arg(10);
BENCHMARK(BM_PartitionAssign<part::GridPartitioner>)->Arg(10);
BENCHMARK(BM_PartitionAssign<part::AngularPartitioner>)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
