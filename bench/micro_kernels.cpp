// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// MapReduce pipeline: dominance tests, the sequential skyline algorithms,
// the hyperspherical transform, and partition assignment.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/support.hpp"
#include "src/geometry/hyperspherical.hpp"
#include "src/partition/angular.hpp"
#include "src/partition/dimensional.hpp"
#include "src/partition/grid.hpp"
#include "src/spatial/bbs.hpp"
#include "src/spatial/rtree.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/dominance.hpp"

using namespace mrsky;

namespace {

data::PointSet workload(std::size_t n, std::size_t dim) {
  return bench::qws_workload(n, dim, bench::kDefaultSeed);
}

void BM_DominanceTest(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(1024, dim);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool result = skyline::dominates(ps.point(i % 1024), ps.point((i + 511) % 1024));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DominanceTest)->Arg(2)->Arg(4)->Arg(10);

void BM_CompareThreeWay(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(1024, dim);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto rel = skyline::compare(ps.point(i % 1024), ps.point((i + 511) % 1024));
    benchmark::DoNotOptimize(rel);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompareThreeWay)->Arg(2)->Arg(10);

template <skyline::Algorithm Algo>
void BM_SkylineAlgorithm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto ps = workload(n, dim);
  for (auto _ : state) {
    auto sky = skyline::compute_skyline(ps, Algo);
    benchmark::DoNotOptimize(sky);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SkylineAlgorithm<skyline::Algorithm::kBnl>)
    ->ArgsProduct({{1000, 10000}, {4, 10}});
BENCHMARK(BM_SkylineAlgorithm<skyline::Algorithm::kSfs>)
    ->ArgsProduct({{1000, 10000}, {4, 10}});
BENCHMARK(BM_SkylineAlgorithm<skyline::Algorithm::kDivideConquer>)
    ->ArgsProduct({{1000, 10000}, {4, 10}});

void BM_RTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(n, 4);
  for (auto _ : state) {
    spatial::RTree tree(ps, 16);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000);

void BM_BbsSkyline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto ps = workload(n, dim);
  const spatial::RTree tree(ps, 16);
  for (auto _ : state) {
    auto sky = spatial::bbs_skyline(tree);
    benchmark::DoNotOptimize(sky);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BbsSkyline)->ArgsProduct({{1000, 10000}, {4, 10}});

void BM_HypersphericalTransform(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(1024, dim);
  std::vector<double> phi;
  std::size_t i = 0;
  for (auto _ : state) {
    geo::angles_of(ps.point(i % 1024), phi);
    benchmark::DoNotOptimize(phi);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HypersphericalTransform)->Arg(2)->Arg(10);

template <typename Partitioner>
void BM_PartitionAssign(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto ps = workload(4096, dim);
  Partitioner partitioner(16);
  partitioner.fit(ps);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t p = partitioner.assign(ps.point(i % 4096));
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionAssign<part::DimensionalPartitioner>)->Arg(10);
BENCHMARK(BM_PartitionAssign<part::GridPartitioner>)->Arg(10);
BENCHMARK(BM_PartitionAssign<part::AngularPartitioner>)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
