// Streaming skyline maintenance — maintained apply_batch vs recompute.
//
// ISSUE 9 perf gate: the whole point of exclusive-dominee bookkeeping
// (skyline::MaintainedSkyline) is that a tick of stream mutations — TTL
// expiries, deletes, inserts — costs work proportional to what changed, not
// to the live set. This bench replays ONE deterministic mutation schedule
// through both implementations:
//
//  * maintained: a streaming QueryEngine, one apply_batch per tick (the
//    snapshot published each tick carries the exact full skyline);
//  * recompute: the from-scratch baseline every streaming paper compares
//    against — apply the tick's mutations to a plain live set, then
//    bnl_skyline the whole thing.
//
// Both paths see identical ids, identical TTL semantics and identical
// mutation order, so their final skylines must match BITWISE — that identity
// is asserted unconditionally (exactness gate), while `--check
// --min-speedup R` additionally turns the events/sec ratio into an exit code
// (scripts/ci_perf_smoke.sh gates on 5x).
//
//   bench_stream --cardinality 12000 --dim 4 --ticks 200 --check
//       --min-speedup 5 --json experiment_results/stream_sweep.json
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/service/query_engine.hpp"
#include "src/skyline/algorithms.hpp"

using namespace mrsky;

namespace {

/// Ascending-id copy — the engine's canonical result order.
data::PointSet canonical_by_id(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

bool same_bits(const data::PointSet& a, const data::PointSet& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.id(i) != b.id(i)) return false;
    const auto pa = a.point(i);
    const auto pb = b.point(i);
    for (std::size_t d = 0; d < pa.size(); ++d) {
      if (std::bit_cast<std::uint64_t>(pa[d]) != std::bit_cast<std::uint64_t>(pb[d])) {
        return false;
      }
    }
  }
  return true;
}

/// Plain live-set replica driven by the same schedule: the recompute
/// baseline's state, and the source of its per-tick skyline input.
class NaiveStream {
 public:
  explicit NaiveStream(const data::PointSet& initial, data::PointId next_id)
      : dim_(initial.dim()), next_id_(next_id) {
    for (std::size_t i = 0; i < initial.size(); ++i) {
      std::vector<double> row(initial.point(i).begin(), initial.point(i).end());
      live_.emplace(initial.id(i), std::move(row));
    }
  }

  void apply(const service::MutationBatch& batch) {
    ++tick_;
    while (!expiries_.empty() && expiries_.top().first <= tick_) {
      live_.erase(expiries_.top().second);
      expiries_.pop();
    }
    for (data::PointId id : batch.deletes) live_.erase(id);
    for (std::size_t i = 0; i < batch.inserts.size(); ++i) {
      const data::PointId id = next_id_++;
      const auto p = batch.inserts.point(i);
      live_.emplace(id, std::vector<double>(p.begin(), p.end()));
      const std::int64_t ttl = batch.ttl_ticks.empty() ? 0 : batch.ttl_ticks[i];
      if (ttl > 0) expiries_.emplace(tick_ + static_cast<std::uint64_t>(ttl), id);
    }
  }

  [[nodiscard]] data::PointSet skyline() const {
    std::vector<std::pair<data::PointId, const std::vector<double>*>> rows;
    rows.reserve(live_.size());
    for (const auto& [id, coords] : live_) rows.emplace_back(id, &coords);
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    data::PointSet ps(dim_);
    for (const auto& [id, coords] : rows) ps.push_back(*coords, id);
    return canonical_by_id(skyline::bnl_skyline(ps));
  }

 private:
  std::size_t dim_;
  data::PointId next_id_;
  std::uint64_t tick_ = 0;
  std::unordered_map<data::PointId, std::vector<double>> live_;
  std::priority_queue<std::pair<std::uint64_t, data::PointId>,
                      std::vector<std::pair<std::uint64_t, data::PointId>>, std::greater<>>
      expiries_;
};

double events_per_sec(std::size_t events, std::int64_t ns) {
  return ns > 0 ? static_cast<double>(events) * 1e9 / static_cast<double>(ns) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 12000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4));
  const auto ticks = static_cast<std::size_t>(args.get_int("ticks", 200));
  const auto insert_batch = static_cast<std::size_t>(args.get_int("insert-batch", 8));
  const auto delete_batch = static_cast<std::size_t>(args.get_int("delete-batch", 8));
  const auto ttl = static_cast<std::int64_t>(args.get_int("ttl", 48));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const bool check = args.get_bool("check", false);
  const double min_speedup = args.get_double("min-speedup", 5.0);
  const std::string json_out = args.get_string("json", "");

  // One shared pool of rows: the first n seed the resident dataset, the rest
  // arrive tick by tick. Both implementations assign stream ids n, n+1, ...
  const data::PointSet all = bench::qws_workload(n + ticks * insert_batch, dim, seed);
  std::vector<std::size_t> head(n);
  for (std::size_t i = 0; i < n; ++i) head[i] = i;
  const data::PointSet initial = all.select(head);

  // The schedule is generated once and replayed verbatim by both paths.
  // Deletes sample uniformly over every id ever assigned — hitting an
  // already-dead id is the protocol's missing-delete case, and both sides
  // must count it identically.
  common::Rng rng(seed * 0x9e3779b9ull + 0x57ull);
  std::vector<service::MutationBatch> schedule(ticks);
  std::size_t events = 0;
  std::size_t next_row = n;
  for (std::size_t t = 0; t < ticks; ++t) {
    service::MutationBatch& batch = schedule[t];
    batch.inserts = data::PointSet(dim);
    for (std::size_t i = 0; i < insert_batch; ++i, ++next_row) {
      batch.inserts.push_back(all.point(next_row), all.id(next_row));
      batch.ttl_ticks.push_back(i % 4 == 0 ? ttl : 0);  // every 4th row expires
    }
    const std::size_t assigned = n + t * insert_batch;
    for (std::size_t i = 0; i < delete_batch; ++i) {
      batch.deletes.push_back(static_cast<data::PointId>(rng.uniform_index(assigned)));
    }
    events += insert_batch + delete_batch;
  }

  std::cout << "streaming skyline maintenance — maintained apply_batch vs recompute\n"
            << "workload: QWS-like N=" << n << " d=" << dim << ", " << ticks << " ticks x ("
            << insert_batch << " inserts + " << delete_batch << " deletes), ttl " << ttl
            << " on every 4th insert\n\n";

  // --- maintained path ---
  service::QueryEngine engine(initial, {});
  data::PointSet maintained_final(dim);
  const auto m0 = std::chrono::steady_clock::now();
  for (const auto& batch : schedule) {
    const service::ApplyResult r = engine.apply_batch(batch);
    maintained_final = *r.snapshot->full_skyline;
  }
  const auto m1 = std::chrono::steady_clock::now();
  const auto maintained_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(m1 - m0).count();

  // --- recompute-from-scratch baseline ---
  NaiveStream naive(initial, static_cast<data::PointId>(n));
  data::PointSet recompute_final(dim);
  const auto r0 = std::chrono::steady_clock::now();
  for (const auto& batch : schedule) {
    naive.apply(batch);
    recompute_final = naive.skyline();
  }
  const auto r1 = std::chrono::steady_clock::now();
  const auto recompute_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(r1 - r0).count();

  // Exactness gate — unconditional, even without --check: the maintained
  // final skyline must equal the from-scratch recompute bit for bit.
  MRSKY_REQUIRE(same_bits(maintained_final, recompute_final),
                "maintained and recomputed final skylines differ — delete/TTL "
                "maintenance is NOT exact");

  const double maintained_eps = events_per_sec(events, maintained_ns);
  const double recompute_eps = events_per_sec(events, recompute_ns);
  const double speedup =
      recompute_ns > 0 && maintained_ns > 0
          ? static_cast<double>(recompute_ns) / static_cast<double>(maintained_ns)
          : 0.0;

  const service::QueryEngine::Stats stats = engine.stats();
  common::Table table({"path", "events", "wall_ms", "events_per_sec", "final_skyline"});
  table.add_row({"maintained", common::Table::fmt(events),
                 common::Table::fmt(static_cast<double>(maintained_ns) / 1e6, 2),
                 common::Table::fmt(maintained_eps, 0),
                 common::Table::fmt(maintained_final.size())});
  table.add_row({"recompute", common::Table::fmt(events),
                 common::Table::fmt(static_cast<double>(recompute_ns) / 1e6, 2),
                 common::Table::fmt(recompute_eps, 0),
                 common::Table::fmt(recompute_final.size())});
  table.print(std::cout, "final skylines bitwise-identical; speedup " +
                             common::Table::fmt(speedup, 1) + "x");

  std::cout << "\napply_batches: " << stats.apply_batches
            << "  deleted: " << stats.points_deleted << "  expired: " << stats.points_expired
            << "  missing deletes: " << stats.deletes_missed
            << "  skyline entered/left: " << stats.stream_entered << "/" << stats.stream_left
            << "\n";

  if (!json_out.empty()) {
    std::ofstream file(json_out);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + json_out);
    file << "{\"workload\":{\"cardinality\":" << n << ",\"dim\":" << dim
         << ",\"ticks\":" << ticks << ",\"insert_batch\":" << insert_batch
         << ",\"delete_batch\":" << delete_batch << ",\"ttl\":" << ttl << ",\"seed\":" << seed
         << "},\"events\":" << events << ",\"maintained_ns\":" << maintained_ns
         << ",\"recompute_ns\":" << recompute_ns
         << ",\"maintained_events_per_sec\":" << maintained_eps
         << ",\"recompute_events_per_sec\":" << recompute_eps << ",\"speedup\":" << speedup
         << ",\"bitwise_identical\":true,\"final_skyline\":" << maintained_final.size()
         << ",\"stats\":{\"apply_batches\":" << stats.apply_batches
         << ",\"points_deleted\":" << stats.points_deleted
         << ",\"points_expired\":" << stats.points_expired
         << ",\"deletes_missed\":" << stats.deletes_missed
         << ",\"stream_entered\":" << stats.stream_entered
         << ",\"stream_left\":" << stats.stream_left << "}}\n";
    std::cout << "json written to " << json_out << "\n";
  }

  if (check && speedup < min_speedup) {
    std::cerr << "FAIL: maintained path " << speedup << "x over recompute, below required "
              << min_speedup << "x\n";
    return 1;
  }
  if (check) {
    std::cout << "CHECK OK: bitwise-identical skylines, speedup >= " << min_speedup << "x\n";
  }
  return 0;
}
