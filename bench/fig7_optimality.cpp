// Figure 7 — local skyline optimality (paper Eq. 5) vs dimension.
//
// Paper setup mirrors Fig. 5: dimensions 2..10 at N = 1,000 (Fig. 7a,
// --cardinality 1000) and N = 100,000 (Fig. 7b, --cardinality 100000).
// Expected shape: optimality increases with dimension for every method;
// MR-Angle dominates at every point (reaching ≈ 0.61 at N=1,000, d=10 in the
// paper) and the gaps widen at the larger cardinality.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 1000));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto dims = args.get_int_list("dims", {2, 4, 6, 8, 10});
  const std::string trace_out = args.get_string("trace-out", "");
  common::TraceRecorder recorder;
  common::TraceRecorder* const trace = trace_out.empty() ? nullptr : &recorder;

  std::cout << "Figure 7 reproduction — local skyline optimality (Eq. 5) vs dimension\n"
            << "cardinality N=" << n << ", cluster=" << servers << " servers\n\n";

  common::Table table({"dim", "method", "optimality", "min_part", "max_part", "local_total",
                       "global_skyline"});
  for (std::int64_t d : dims) {
    const auto ps = bench::qws_workload(n, static_cast<std::size_t>(d), seed);
    for (part::Scheme scheme : bench::paper_schemes()) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      const auto cell = bench::run_cell(ps, config, servers, trace);
      table.add_row({common::Table::fmt(static_cast<int>(d)), bench::display_name(scheme),
                     common::Table::fmt(cell.optimality.mean_optimality, 3),
                     common::Table::fmt(cell.optimality.min_optimality, 3),
                     common::Table::fmt(cell.optimality.max_optimality, 3),
                     common::Table::fmt(cell.optimality.local_total),
                     common::Table::fmt(cell.optimality.global_total)});
    }
  }
  if (trace != nullptr) {
    recorder.write_chrome_json(trace_out);
    std::cerr << "trace written to " << trace_out << " (" << recorder.spans().size()
              << " spans; load in Perfetto or chrome://tracing)\n";
  }
  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
    return 0;
  }
  table.print(std::cout, "Fig7 N=" + std::to_string(n));
  std::cout << "\nExpected shape (paper): optimality grows with dimension; MR-Angle is\n"
               "highest everywhere (0.61 at N=1000, d=10 in the paper).\n";
  return 0;
}
