// Out-of-core block-store pipeline — RSS-bounded .mrb streaming vs resident.
//
// ISSUE 10 perf gate: a fig5-style run over a dataset several times larger
// than the RSS cap must complete from a `.mrb` block store with the process
// high-water mark under the cap, a skyline bitwise-identical to the resident
// pipeline's, and a meaningful fraction of the file's payload pruned before
// it is ever read (footer min-corners vs. the fit-sample skyline).
//
// Three modes, run as SEPARATE PROCESSES so the measured high-water mark is
// honest (VmHWM is per-process and never decreases — a generation pass in
// the same process would dominate it):
//
//   --mode generate  materialise the workload, z-order it, write the .mrb
//                    (unmeasured helper process)
//   --mode memory    materialise the .mrb and run the resident pipeline;
//                    lands the baseline skyline as an exact .mrsk record
//                    file for the block run to diff against
//   --mode block     stream the .mrb through run_mr_skyline(DatasetSource)
//                    with a shuffle spill budget. --check gates:
//                    file_bytes >= 4x --rss-cap-mb, VmHWM <= --rss-cap-mb,
//                    bytes_pruned >= --min-pruned-fraction of the payload,
//                    and bitwise identity against --baseline
//   --mode all       all three in sequence in one process (the ctest smoke
//                    path); the RSS gate is skipped, identity + pruning hold
//
//   bench_out_of_core --mode generate --cardinality 4000000 --dim 4 \
//       --distribution anticorrelated --file /tmp/ooc.mrb
//   bench_out_of_core --mode memory --file /tmp/ooc.mrb --baseline /tmp/sky.mrsk
//   bench_out_of_core --mode block --file /tmp/ooc.mrb --baseline /tmp/sky.mrsk \
//       --rss-cap-mb 36 --check --json experiment_results/out_of_core.json
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/error.hpp"
#include "src/common/table.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/dataset/block_store.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/record_file.hpp"
#include "src/dataset/source.hpp"

using namespace mrsky;

namespace {

/// Process high-water resident set, in kilobytes, from /proc/self/status.
/// Returns 0 where the file or the field is unavailable (non-Linux).
std::size_t vm_hwm_kb() {
  std::ifstream in("/proc/self/status");
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::stoull(line.substr(6)));
    }
  }
  return 0;
}

/// Ascending-id copy. The streamed and resident runs fit their partitioners
/// differently (bounded block sample vs. everything), which steers the merge
/// cascade's emission ORDER but never its membership — so identity is
/// checked over the canonical order.
data::PointSet canonical_by_id(const data::PointSet& ps) {
  std::vector<std::size_t> order(ps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ps.id(a) < ps.id(b); });
  return ps.select(order);
}

bool same_bits(const data::PointSet& a, const data::PointSet& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.id(i) != b.id(i)) return false;
    const auto pa = a.point(i);
    const auto pb = b.point(i);
    for (std::size_t d = 0; d < pa.size(); ++d) {
      if (std::bit_cast<std::uint64_t>(pa[d]) != std::bit_cast<std::uint64_t>(pb[d])) {
        return false;
      }
    }
  }
  return true;
}

struct Options {
  std::size_t cardinality = 200000;
  std::size_t dim = 4;
  data::Distribution distribution = data::Distribution::kAnticorrelated;
  std::uint64_t seed = bench::kDefaultSeed;
  std::size_t block_rows = 8192;
  std::string order = "zorder";
  std::string file;
  std::string baseline;
  std::string json_out;
  std::uint64_t spill_bytes = 8ull << 20;
  std::size_t rss_cap_mb = 0;
  double min_pruned_fraction = 0.2;
  bool check = false;
  core::MRSkylineConfig config;  // fig5-style: angular, the paper's defaults
};

core::MRSkylineConfig fig5_config(const common::CliArgs& args) {
  core::MRSkylineConfig config;
  config.scheme = part::parse_scheme(args.get_string("scheme", "angular"));
  config.servers = static_cast<std::size_t>(args.get_int("servers", 8));
  config.num_partitions = static_cast<std::size_t>(args.get_int("partitions", 0));
  config.local_algorithm = skyline::parse_algorithm(args.get_string("algorithm", "sfs"));
  // RSS under the cap needs bounded in-flight state, and both are per-task:
  // a map task buffers its whole shard before it can spill, a reduce task
  // materialises its whole bucket. Many small map tasks + few worker lanes
  // keep (concurrent tasks x per-task footprint) flat; the defaults here are
  // sized for the perf-scale block run and overridable per mode.
  config.num_map_tasks = static_cast<std::size_t>(args.get_int("map-tasks", 0));
  config.run_options.num_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.validate_or_throw();
  return config;
}

int do_generate(const Options& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  data::PointSet ps = data::generate(opt.distribution, opt.cardinality, opt.dim, opt.seed);
  if (opt.order == "zorder") ps = ps.select(data::zorder_permutation(ps));
  data::write_block_store(opt.file, ps, opt.block_rows);
  const auto t1 = std::chrono::steady_clock::now();
  const data::BlockStore store(opt.file);
  std::cout << "generate: " << data::to_string(opt.distribution) << " N=" << opt.cardinality
            << " d=" << opt.dim << " -> " << opt.file << " (" << store.block_count()
            << " blocks of <= " << store.block_rows() << " rows, " << store.file_bytes()
            << " bytes, order=" << opt.order << ") in "
            << std::chrono::duration<double>(t1 - t0).count() << " s\n";
  return 0;
}

struct RunResult {
  double wall_seconds = 0.0;
  std::size_t skyline = 0;
  std::size_t hwm_kb = 0;
  mr::JobMetrics job1;
};

RunResult do_memory(const Options& opt) {
  const data::BlockStore store(opt.file);
  data::PointSet ps = store.materialize();
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = core::run_mr_skyline(ps, opt.config);
  const auto t1 = std::chrono::steady_clock::now();
  if (!opt.baseline.empty()) {
    data::write_record_file(opt.baseline, canonical_by_id(result.skyline));
  }

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.skyline = result.skyline.size();
  r.hwm_kb = vm_hwm_kb();
  r.job1 = result.partition_job;
  std::cout << "memory:  skyline " << r.skyline << " points in " << r.wall_seconds
            << " s, VmHWM " << r.hwm_kb << " kB"
            << (opt.baseline.empty() ? "" : ", baseline -> " + opt.baseline) << "\n";
  return r;
}

/// Runs the streaming pipeline and applies the --check gates. `gate_rss` is
/// false in --mode all, where generation already polluted the process HWM.
int do_block(const Options& opt, bool gate_rss) {
  auto source = std::make_unique<data::BlockStoreSource>(opt.file);
  const std::uint64_t file_bytes = source->store().file_bytes();
  auto config = opt.config;
  config.run_options.shuffle_spill_bytes = opt.spill_bytes;

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = core::run_mr_skyline(*source, config);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.skyline = result.skyline.size();
  r.hwm_kb = vm_hwm_kb();
  r.job1 = result.partition_job;

  const std::uint64_t payload = r.job1.bytes_read + r.job1.bytes_pruned;
  const double pruned_fraction =
      payload > 0 ? static_cast<double>(r.job1.bytes_pruned) / static_cast<double>(payload) : 0.0;

  bool bitwise = true;
  if (!opt.baseline.empty()) {
    const data::PointSet expect = data::read_record_file(opt.baseline);
    bitwise = same_bits(expect, canonical_by_id(result.skyline));
    MRSKY_REQUIRE(bitwise, "block-store skyline differs from the resident baseline — "
                           "the out-of-core path is NOT exact");
  }

  common::Table table({"metric", "value"});
  table.add_row({"file_bytes", common::Table::fmt(static_cast<std::size_t>(file_bytes))});
  table.add_row({"wall_s", common::Table::fmt(r.wall_seconds, 3)});
  table.add_row({"vm_hwm_kb", common::Table::fmt(r.hwm_kb)});
  table.add_row({"skyline", common::Table::fmt(r.skyline)});
  table.add_row({"blocks_pruned", common::Table::fmt(static_cast<std::size_t>(r.job1.blocks_pruned))});
  table.add_row({"bytes_read", common::Table::fmt(static_cast<std::size_t>(r.job1.bytes_read))});
  table.add_row({"bytes_pruned", common::Table::fmt(static_cast<std::size_t>(r.job1.bytes_pruned))});
  table.add_row({"pruned_fraction", common::Table::fmt(pruned_fraction, 3)});
  table.add_row({"spilled_bytes",
                 common::Table::fmt(static_cast<std::size_t>(r.job1.shuffle_spilled_bytes))});
  table.add_row({"spill_files", common::Table::fmt(static_cast<std::size_t>(r.job1.shuffle_spill_files))});
  table.print(std::cout, "block-store streaming run" +
                             std::string(opt.baseline.empty() ? "" : " (bitwise-identical)"));

  if (!opt.json_out.empty()) {
    std::ofstream file(opt.json_out);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + opt.json_out);
    file << "{\"workload\":{\"cardinality\":" << opt.cardinality << ",\"dim\":" << opt.dim
         << ",\"distribution\":\"" << data::to_string(opt.distribution)
         << "\",\"seed\":" << opt.seed << ",\"block_rows\":" << opt.block_rows
         << ",\"order\":\"" << opt.order << "\"},\"file_bytes\":" << file_bytes
         << ",\"wall_seconds\":" << r.wall_seconds << ",\"vm_hwm_kb\":" << r.hwm_kb
         << ",\"rss_cap_mb\":" << opt.rss_cap_mb << ",\"skyline\":" << r.skyline
         << ",\"blocks_pruned\":" << r.job1.blocks_pruned
         << ",\"bytes_read\":" << r.job1.bytes_read
         << ",\"bytes_pruned\":" << r.job1.bytes_pruned
         << ",\"pruned_fraction\":" << pruned_fraction
         << ",\"shuffle_spilled_bytes\":" << r.job1.shuffle_spilled_bytes
         << ",\"shuffle_spill_files\":" << r.job1.shuffle_spill_files
         << ",\"bitwise_identical\":" << (bitwise ? "true" : "false") << "}\n";
    std::cout << "json written to " << opt.json_out << "\n";
  }

  if (opt.check) {
    bool ok = true;
    if (pruned_fraction < opt.min_pruned_fraction) {
      std::cerr << "FAIL: pruned fraction " << pruned_fraction << " below required "
                << opt.min_pruned_fraction << "\n";
      ok = false;
    }
    if (gate_rss && opt.rss_cap_mb > 0) {
      const std::uint64_t cap_kb = static_cast<std::uint64_t>(opt.rss_cap_mb) * 1024;
      if (file_bytes < 4 * cap_kb * 1024) {
        std::cerr << "FAIL: file is " << file_bytes << " bytes, below 4x the " << opt.rss_cap_mb
                  << " MB RSS cap — the gate would not prove anything\n";
        ok = false;
      }
      if (r.hwm_kb > cap_kb) {
        std::cerr << "FAIL: VmHWM " << r.hwm_kb << " kB exceeds the " << opt.rss_cap_mb
                  << " MB cap\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "CHECK OK: " << (gate_rss && opt.rss_cap_mb > 0
                                      ? "RSS bounded, pruning effective, skyline exact\n"
                                      : "pruning effective, skyline exact\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const std::string mode = args.get_string("mode", "all");

  Options opt;
  opt.cardinality = static_cast<std::size_t>(args.get_int("cardinality", 200000));
  opt.dim = static_cast<std::size_t>(args.get_int("dim", 4));
  opt.distribution =
      data::parse_distribution(args.get_string("distribution", "anticorrelated"));
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  opt.block_rows = static_cast<std::size_t>(args.get_int("block-rows", 8192));
  opt.order = args.get_string("order", "zorder");
  opt.file = args.get_string("file", "");
  opt.baseline = args.get_string("baseline", "");
  opt.json_out = args.get_string("json", "");
  opt.spill_bytes = static_cast<std::uint64_t>(args.get_int("spill-bytes", 8 << 20));
  opt.rss_cap_mb = static_cast<std::size_t>(args.get_int("rss-cap-mb", 0));
  opt.min_pruned_fraction = args.get_double("min-pruned-fraction", 0.2);
  opt.check = args.get_bool("check", false);
  opt.config = fig5_config(args);

  try {
    if (mode == "all") {
      // Single-process smoke: everything in a scratch directory, RSS gate off.
      const auto dir = std::filesystem::temp_directory_path() /
                       ("mrsky-ooc-" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir);
      if (opt.file.empty()) opt.file = (dir / "data.mrb").string();
      if (opt.baseline.empty()) opt.baseline = (dir / "baseline.mrsk").string();
      do_generate(opt);
      do_memory(opt);
      const int rc = do_block(opt, /*gate_rss=*/false);
      std::filesystem::remove_all(dir);
      return rc;
    }
    MRSKY_REQUIRE(!opt.file.empty(), "--file <data.mrb> is required for --mode " + mode);
    if (mode == "generate") return do_generate(opt);
    if (mode == "memory") {
      do_memory(opt);
      return 0;
    }
    if (mode == "block") return do_block(opt, /*gate_rss=*/true);
    MRSKY_FAIL("unknown --mode '" + mode + "' (generate|memory|block|all)");
  } catch (const std::exception& e) {
    std::cerr << "bench_out_of_core: " << e.what() << "\n";
    return 1;
  }
}
