// Ablation — angular split policy: equal-width (paper) vs equi-depth.
//
// Equal-width sectors follow the paper's construction (a grid over the
// angular coordinates); equi-depth places boundaries at sample quantiles of
// each angle. The trade-off this bench surfaces: equi-depth wins on load
// balance (balance_cv → 0) but its wide outer sectors collect many locally-
// undominated points, inflating the merge input; equal-width keeps the merge
// small at the cost of skewed sector populations.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto dims = args.get_int_list("dims", {4, 6, 8, 10});

  std::cout << "Ablation — angular split policy (equal-width vs equi-depth)\n"
            << "N=" << n << ", cluster=" << servers << " servers\n\n";

  common::Table table({"dim", "policy", "total_s", "balance_cv", "largest_part",
                       "merge_input", "optimality"});
  for (std::int64_t d : dims) {
    const auto ps = bench::qws_workload(n, static_cast<std::size_t>(d), seed);
    for (part::Scheme scheme :
         {part::Scheme::kAngular, part::Scheme::kAngularEquiDepth}) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      const auto cell = bench::run_cell(ps, config, servers);
      table.add_row({common::Table::fmt(static_cast<int>(d)),
                     scheme == part::Scheme::kAngular ? "equal-width" : "equi-depth",
                     common::Table::fmt(cell.times.total_seconds(), 2),
                     common::Table::fmt(cell.run.partition_report.balance_cv, 2),
                     common::Table::fmt(cell.run.partition_report.largest),
                     common::Table::fmt(cell.optimality.local_total),
                     common::Table::fmt(cell.optimality.mean_optimality, 3)});
    }
  }
  table.print(std::cout, "Angular-policy ablation");
  return 0;
}
