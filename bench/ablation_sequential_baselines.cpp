// Ablation — sequential skyline baselines: the scan algorithms the paper's
// pipeline uses (BNL, SFS), the memory-bounded multi-pass BNL of the
// original skyline paper, and the index-based BBS (Papadias et al. [25]).
//
// Single-machine comparison at the paper's workload: wall time, dominance
// tests, and per-algorithm extras (passes/spills for bounded BNL, node
// visits for BBS). All outputs are verified identical.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"
#include "src/common/timer.hpp"
#include "src/skyline/algorithms.hpp"
#include "src/skyline/bnl_bounded.hpp"
#include "src/skyline/verify.hpp"
#include "src/spatial/bbs.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 8));
  const auto window = static_cast<std::size_t>(args.get_int("window", 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — sequential skyline baselines\n"
            << "N=" << n << ", d=" << dim << ", QWS-like workload\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  common::Table table({"algorithm", "wall_ms", "dominance_tests", "skyline", "notes"});

  data::PointSet reference(1);
  {
    skyline::SkylineStats stats;
    common::Timer timer;
    reference = skyline::bnl_skyline(ps, &stats);
    table.add_row({"bnl", common::Table::fmt(timer.elapsed_ms(), 1),
                   common::Table::fmt(stats.dominance_tests),
                   common::Table::fmt(reference.size()), "in-memory window"});
  }
  {
    skyline::SkylineStats stats;
    common::Timer timer;
    const auto sky = skyline::sfs_skyline(ps, &stats);
    table.add_row({"sfs", common::Table::fmt(timer.elapsed_ms(), 1),
                   common::Table::fmt(stats.dominance_tests), common::Table::fmt(sky.size()),
                   skyline::same_ids(sky, reference) ? "presorted" : "MISMATCH"});
  }
  {
    skyline::BoundedBnlReport report;
    common::Timer timer;
    const auto sky = skyline::bnl_skyline_bounded(ps, window, &report);
    table.add_row({"bnl-bounded", common::Table::fmt(timer.elapsed_ms(), 1),
                   common::Table::fmt(report.stats.dominance_tests),
                   common::Table::fmt(sky.size()),
                   "W=" + std::to_string(window) + ", " + std::to_string(report.passes) +
                       " passes, " + std::to_string(report.overflow_points) + " spills" +
                       (skyline::same_ids(sky, reference) ? "" : " MISMATCH")});
  }
  {
    spatial::BbsReport report;
    common::Timer timer;
    const auto sky = spatial::bbs_skyline(ps, &report);
    table.add_row({"bbs", common::Table::fmt(timer.elapsed_ms(), 1),
                   common::Table::fmt(report.stats.dominance_tests),
                   common::Table::fmt(sky.size()),
                   std::to_string(report.nodes_visited) + " nodes visited" +
                       (skyline::same_ids(sky, reference) ? "" : " MISMATCH")});
  }
  table.print(std::cout, "Sequential baselines");
  std::cout << "\nBBS is the I/O-optimal sequential baseline; the MapReduce pipeline's\n"
               "value is distributing the work the scan algorithms do in one process.\n";
  return 0;
}
