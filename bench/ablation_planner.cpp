// Ablation — adaptive planner (scheme=auto) vs. static scheme choice.
//
// The planner's promise is SATO's: sample the data, price the candidates,
// and land on a plan at least as good as the best static configuration a
// user could have picked — on every data family, not just the ones
// MR-Angle wins. This bench sweeps the five workload families
// (independent / correlated / anticorrelated / clustered / QWS-like) and,
// per family:
//
//  * times every static paper scheme (MR-Dim / MR-Grid / MR-Angle) plus
//    MR-Pivot under the default configuration,
//  * times scheme=auto (planning included; the ex-planning pipeline wall is
//    reported separately),
//  * re-runs the exact static configuration the planner resolved to and
//    verifies the skyline is BITWISE identical (ids and coordinate bits) —
//    auto must change performance, never answers,
//  * with --check, gates: ex-planning auto wall <= best static wall x
//    (1 + tolerance) + noise floor, and planning overhead <= --max-plan-ms.
//
// The noise floor keeps the gate meaningful at smoke scale, where walls are
// fractions of a millisecond and scheduler jitter dwarfs any plan quality
// difference.
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"
#include "src/core/mr_skyline.hpp"

using namespace mrsky;

namespace {

/// Bitwise equality: same points, same order, same coordinate bit patterns.
bool bitwise_equal(const data::PointSet& a, const data::PointSet& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.id(i) != b.id(i)) return false;
    if (std::memcmp(a.point(i).data(), b.point(i).data(), a.dim() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct TimedRun {
  core::MRSkylineResult result;
  double best_wall = std::numeric_limits<double>::infinity();
};

TimedRun timed(const data::PointSet& ps, const core::MRSkylineConfig& config,
               std::size_t repeats) {
  TimedRun out;
  for (std::size_t r = 0; r < repeats; ++r) {
    core::MRSkylineResult run = core::run_mr_skyline(ps, config);
    if (run.wall_seconds < out.best_wall) {
      out.best_wall = run.wall_seconds;
      out.result = std::move(run);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 60000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 5));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto repeats = static_cast<std::size_t>(args.get_int("repeats", 2));
  const double tolerance = args.get_double("tolerance", 0.10);
  const double noise_floor_s = args.get_double("noise-floor-ms", 25.0) / 1e3;
  const double max_plan_s = args.get_double("max-plan-ms", 2000.0) / 1e3;
  const bool check = args.get_bool("check", false);
  const std::string json_path = args.get_string("json", "");

  std::cout << "Ablation — adaptive planner (scheme=auto)\n"
            << "N=" << n << ", d=" << dim << ", servers=" << servers << ", repeats=" << repeats
            << ", tolerance=" << tolerance * 100 << "%, noise floor=" << noise_floor_s * 1e3
            << " ms\n\n";

  std::vector<part::Scheme> static_schemes = bench::paper_schemes();
  static_schemes.push_back(part::Scheme::kPivot);

  struct FamilyRow {
    std::string family;
    std::string best_static;
    double best_static_s = 0.0;
    double auto_total_s = 0.0;     ///< planning included
    double auto_pipeline_s = 0.0;  ///< ex-planning
    double planning_s = 0.0;
    double predicted_s = 0.0;
    std::string chosen;
    bool bitwise_ok = false;
    bool within_tolerance = false;
  };
  std::vector<FamilyRow> rows;

  common::Table table({"family", "best_static", "static_s", "auto_s", "auto_pipeline_s",
                       "plan_ms", "chosen", "bitwise", "gate"});
  bool all_ok = true;

  auto run_family = [&](const std::string& label, const data::PointSet& ps) {
    FamilyRow row;
    row.family = label;

    row.best_static_s = std::numeric_limits<double>::infinity();
    for (part::Scheme scheme : static_schemes) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      config.servers = servers;
      const TimedRun run = timed(ps, config, repeats);
      if (run.best_wall < row.best_static_s) {
        row.best_static_s = run.best_wall;
        row.best_static = bench::display_name(scheme);
      }
    }

    core::MRSkylineConfig auto_config;
    auto_config.scheme = part::Scheme::kAuto;
    auto_config.servers = servers;
    const TimedRun auto_run = timed(ps, auto_config, repeats);
    const core::PlanDecision& plan = auto_run.result.plan;
    row.auto_total_s = auto_run.best_wall;
    row.planning_s = plan.planning_seconds;
    row.auto_pipeline_s = auto_run.best_wall - plan.planning_seconds;
    row.predicted_s = plan.predicted_seconds;
    row.chosen = bench::display_name(plan.scheme) + "/Np=" + std::to_string(plan.partitions) +
                 "/fan=" + std::to_string(plan.merge_fan_in) + (plan.salted ? "/salt" : "") +
                 (plan.fallback ? " (fallback)" : "");

    // The resolved plan, run as a plain static config, must give the exact
    // same bits: auto is a routing decision, never a different computation.
    core::MRSkylineConfig resolved;
    resolved.scheme = plan.scheme;
    resolved.servers = servers;
    resolved.num_partitions = plan.partitions;
    resolved.merge_fan_in = plan.merge_fan_in;
    resolved.salt_oversized_partitions = plan.salted;
    const core::MRSkylineResult replay = core::run_mr_skyline(ps, resolved);
    row.bitwise_ok = bitwise_equal(auto_run.result.skyline, replay.skyline);

    row.within_tolerance =
        row.auto_pipeline_s <= row.best_static_s * (1.0 + tolerance) + noise_floor_s &&
        row.planning_s <= max_plan_s;
    all_ok = all_ok && row.bitwise_ok && row.within_tolerance;

    table.add_row({row.family, row.best_static, common::Table::fmt(row.best_static_s, 4),
                   common::Table::fmt(row.auto_total_s, 4),
                   common::Table::fmt(row.auto_pipeline_s, 4),
                   common::Table::fmt(row.planning_s * 1e3, 2), row.chosen,
                   row.bitwise_ok ? "ok" : "MISMATCH",
                   row.within_tolerance ? "pass" : "FAIL"});
    rows.push_back(row);
  };

  for (data::Distribution dist :
       {data::Distribution::kIndependent, data::Distribution::kCorrelated,
        data::Distribution::kAnticorrelated, data::Distribution::kClustered}) {
    run_family(data::to_string(dist), bench::synthetic_workload(dist, n, dim, seed));
  }
  run_family("qws-like", bench::qws_workload(n, dim, seed));

  table.print(std::cout, "Planner ablation (walls are min over repeats, in-process seconds)");
  std::cout << "planner overhead bound: " << max_plan_s * 1e3
            << " ms; gate: auto pipeline wall <= best static x " << (1.0 + tolerance)
            << " + " << noise_floor_s * 1e3 << " ms noise floor\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "cannot open " << json_path << "\n";
      return 2;
    }
    file << "{\"cardinality\":" << n << ",\"dim\":" << dim << ",\"servers\":" << servers
         << ",\"tolerance\":" << tolerance << ",\"families\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const FamilyRow& r = rows[i];
      if (i > 0) file << ",";
      file << "{\"family\":\"" << r.family << "\",\"best_static\":\"" << r.best_static
           << "\",\"best_static_seconds\":" << r.best_static_s
           << ",\"auto_total_seconds\":" << r.auto_total_s
           << ",\"auto_pipeline_seconds\":" << r.auto_pipeline_s
           << ",\"planning_seconds\":" << r.planning_s
           << ",\"predicted_seconds\":" << r.predicted_s << ",\"chosen\":\"" << r.chosen
           << "\",\"bitwise_identical\":" << (r.bitwise_ok ? "true" : "false")
           << ",\"within_tolerance\":" << (r.within_tolerance ? "true" : "false") << "}";
    }
    file << "],\"all_ok\":" << (all_ok ? "true" : "false") << "}\n";
    std::cout << "results written to " << json_path << "\n";
  }

  if (check && !all_ok) {
    std::cerr << "FAIL: scheme=auto missed the gate on at least one family (see table)\n";
    return 1;
  }
  if (check) std::cout << "CHECK PASSED: auto within tolerance of best static on all families\n";
  return 0;
}
