// Ablation — straggler sensitivity and speculative execution.
//
// The paper's Hadoop numbers inevitably include straggler noise; our
// simulator lets us dose it. This bench runs MR-Angle once, then re-costs
// the same measured workload on clusters where 0..4 servers run at 1/4
// speed, with and without Hadoop-style speculative execution.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const double slowdown = args.get_double("slowdown", 4.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — stragglers and speculative execution\n"
            << "N=" << n << ", d=" << dim << ", MR-Angle, " << servers
            << " servers, stragglers run at 1/" << slowdown << " speed\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = servers;
  const auto result = core::run_mr_skyline(ps, config);

  common::Table table({"stragglers", "speculation", "map_s", "reduce_s", "total_s",
                       "vs_healthy"});
  double healthy_total = 0.0;
  for (std::size_t stragglers : {0u, 1u, 2u, 4u}) {
    for (bool speculation : {false, true}) {
      mr::ClusterModel model;
      model.servers = servers;
      if (stragglers > 0) model = model.with_stragglers(stragglers, slowdown);
      model.speculative_execution = speculation;
      const auto times = result.simulate(model);
      if (healthy_total == 0.0) healthy_total = times.total_seconds();
      table.add_row({common::Table::fmt(stragglers), speculation ? "on" : "off",
                     common::Table::fmt(times.map_seconds, 2),
                     common::Table::fmt(times.reduce_seconds, 2),
                     common::Table::fmt(times.total_seconds(), 2),
                     common::Table::fmt(times.total_seconds() / healthy_total, 2) + "x"});
    }
  }
  table.print(std::cout, "Straggler ablation");
  std::cout << "\nExpected: stragglers inflate the makespan well beyond their share of\n"
               "capacity; speculation claws most of it back for a little duplicate work.\n";
  return 0;
}
