// Open-loop load bench for the concurrent skyline server (ISSUE 6).
//
// Starts an in-process server::SkylineServer over one shared QueryEngine,
// then drives it with N concurrent client sessions over real loopback TCP.
// The load is OPEN-LOOP: every session has a fixed arrival schedule
// (request i is due at start + i/rate) that does not adapt to response
// times, and a request's latency is measured from its *scheduled* arrival,
// not from when the client got around to sending it — so queueing delay
// under overload is charged to the server instead of silently vanishing
// (the coordinated-omission correction).
//
// The workload is mixed read/insert: every session rotates through the query
// kinds, and the first `--writers` sessions replace every `--insert-every`-th
// request with an inline insert batch, so reads race snapshot publication
// the way the paper's live UDDI registry (§II) would.
//
// `--check` replays the whole run single-threaded for the bitwise gate:
// a fresh engine over the same dataset applies the recorded insert batches
// in snapshot-version order and re-executes every recorded query at the
// version its response reported. The replayed response payload must match
// the served payload byte for byte — the server's concurrency must be
// invisible in results.
//
// Robustness knobs (ISSUE 7): `--deadline-ms` stamps every query with a
// per-request deadline — responses cancelled for a missed deadline are
// counted and rated separately, never as errors, and are excluded from the
// replay gate (they produced no result to reproduce). `--slow-fraction`
// turns that share of the sessions into slow clients that split each request
// line across two writes `--slow-delay-ms` apart, mixing fast and dribbling
// senders on the same server. `--recv-timeout-ms` arms the client-side
// receive timeout, so a server that stops answering shows up as a counted
// timeout instead of a hung bench. `--max-sessions` caps server admission
// below the session count to provoke shedding; shed connections retry with
// backoff (honouring the server's retry_after_ms hint) and the shed rate is
// reported.
//
//   bench_server_load --cardinality 20000 --dim 6 --sessions 8 --requests 200
//       --rate 100 --writers 2 --insert-every 10 --check
//   bench_server_load --sessions 8 --deadline-ms 5 --slow-fraction 0.25
//       --recv-timeout-ms 2000 --check
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/error.hpp"
#include "src/common/table.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/server/client.hpp"
#include "src/server/protocol.hpp"
#include "src/server/server.hpp"
#include "src/service/query_engine.hpp"

using namespace mrsky;
using Clock = std::chrono::steady_clock;

namespace {

struct RequestKind {
  std::string line;      ///< what goes over the wire
  service::Query query;  ///< the same request for the replay engine
};

/// A served query, as the replay gate needs it.
struct QueryRecord {
  std::size_t kind = 0;
  std::uint64_t version = 0;
  std::string payload;  ///< response line with the per-call metrics stripped
};

struct SessionLog {
  std::vector<QueryRecord> queries;
  /// version -> the rows that insert published (local copy; %.17g round-trips
  /// the wire bitwise, so these equal what the server parsed).
  std::map<std::uint64_t, data::PointSet> inserts;
  std::vector<double> query_ms;
  std::vector<double> insert_ms;
  std::uint64_t errors = 0;
  std::uint64_t deadline_missed = 0;  ///< typed cancellations — not errors
  std::uint64_t sheds = 0;            ///< admission rejections seen while connecting
  std::uint64_t timeouts = 0;         ///< client receive timeouts (session aborts)
};

bool response_cancelled(const std::string& response) {
  return response.find("\"cancelled\":true") != std::string::npos;
}

/// Drops the ,"metrics":{...} tail — wall time differs run to run; the
/// payload (kind, version, points / ranking / coverage) must not.
std::string strip_metrics(const std::string& response) {
  const std::size_t pos = response.rfind(",\"metrics\":");
  return pos == std::string::npos ? response : response.substr(0, pos) + "}";
}

std::uint64_t parse_version(const std::string& response) {
  const std::size_t key = response.find("\"version\":");
  MRSKY_REQUIRE(key != std::string::npos, "response has no version: " + response);
  return std::strtoull(response.c_str() + key + 10, nullptr, 10);
}

bool response_ok(const std::string& response) {
  return response.rfind("{\"ok\":true", 0) == 0;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string json_insert_line(const data::PointSet& rows) {
  std::string line = "{\"insert\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) line += ',';
    line += '[';
    bool first = true;
    for (double c : rows.point(i)) {
      if (!first) line += ',';
      first = false;
      line += server::double_repr(c);
    }
    line += ']';
  }
  line += "]}";
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 20000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4));
  const auto sessions = static_cast<std::size_t>(args.get_int("sessions", 8));
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 200));
  const double rate = args.get_double("rate", 100.0);  // per session, req/s
  const auto writers = std::min(sessions, static_cast<std::size_t>(args.get_int("writers", 2)));
  const auto insert_every = std::max<std::size_t>(2, static_cast<std::size_t>(args.get_int("insert-every", 10)));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const bool check = args.get_bool("check", false);
  const std::string json_out = args.get_string("json", "");
  const std::int64_t deadline_ms = args.get_int("deadline-ms", -1);
  const double slow_fraction = args.get_double("slow-fraction", 0.0);
  const std::int64_t slow_delay_ms = args.get_int("slow-delay-ms", 20);
  const std::int64_t recv_timeout_ms = args.get_int("recv-timeout-ms", -1);
  const auto max_sessions =
      static_cast<std::size_t>(args.get_int("max-sessions", static_cast<std::int64_t>(sessions)));
  MRSKY_REQUIRE(sessions >= 1 && requests >= 1 && rate > 0.0, "need sessions/requests >= 1, rate > 0");
  MRSKY_REQUIRE(dim >= 2, "need --dim >= 2");
  MRSKY_REQUIRE(slow_fraction >= 0.0 && slow_fraction <= 1.0, "--slow-fraction must be in [0,1]");
  MRSKY_REQUIRE(max_sessions >= 1, "--max-sessions must be >= 1");
  const auto slow_sessions = static_cast<std::size_t>(slow_fraction * static_cast<double>(sessions));

  const data::PointSet dataset = bench::qws_workload(n, dim, seed);

  std::vector<double> weights(dim, 1.0 / static_cast<double>(dim));
  std::string topk_weights;
  for (std::size_t i = 0; i < dim; ++i) {
    if (i > 0) topk_weights += ',';
    topk_weights += server::double_repr(weights[i]);
  }
  const std::vector<RequestKind> kinds = {
      {"skyline", service::Query{service::SkylineQuery{}}},
      {"skyband 2", service::Query{service::KSkybandQuery{2}}},
      {"subspace 0,1", service::Query{service::SubspaceQuery{{0, 1}}}},
      {"representative 8", service::Query{service::RepresentativeQuery{8}}},
      {"topk 5 " + topk_weights, service::Query{service::TopKWeightedQuery{weights, 5}}},
  };

  // Every writer pre-generates its insert batches so the replay gate can
  // reuse the exact rows. Batches are QWS-like, normalised into the
  // dataset's [0,1] attribute space.
  std::vector<std::vector<data::PointSet>> writer_batches(sessions);
  for (std::size_t s = 0; s < writers; ++s) {
    const std::size_t inserts_per_writer = requests / insert_every + 1;
    data::QwsLikeGenerator gen(dim, seed + 1000 * (s + 1));
    for (std::size_t b = 0; b < inserts_per_writer; ++b) {
      writer_batches[s].push_back(data::normalize_min_max(gen.generate_oriented(batch)));
    }
  }

  service::QueryEngineOptions engine_options;
  service::QueryEngine engine(dataset, engine_options);

  server::ServerOptions server_options;
  server_options.max_sessions = max_sessions;
  server::SkylineServer srv(engine, server_options);
  srv.start();

  std::cout << "server load — open-loop, " << sessions << " sessions x " << requests
            << " requests @ " << rate << " req/s each (" << writers << " writers, insert every "
            << insert_every << "th request, batch " << batch << ")\n"
            << "dataset: QWS-like N=" << n << " d=" << dim << ", server on 127.0.0.1:"
            << srv.port() << "\n";
  if (deadline_ms >= 0) std::cout << "per-query deadline: " << deadline_ms << " ms\n";
  if (slow_sessions > 0) {
    std::cout << slow_sessions << " slow sessions (request split across two writes "
              << slow_delay_ms << " ms apart)\n";
  }
  if (max_sessions < sessions) {
    std::cout << "admission capped at " << max_sessions << " sessions — shed clients retry with backoff\n";
  }
  std::cout << "\n";

  const auto period = std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / rate));
  std::vector<SessionLog> logs(sessions);
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(50);
  const auto bench_start = Clock::now();

  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      SessionLog& log = logs[s];
      const bool slow = s >= sessions - slow_sessions;
      server::LineClient client;
      server::BackoffOptions backoff;
      backoff.jitter_seed = seed + s;  // decorrelate the retry storms
      const auto admitted = client.connect_with_backoff("127.0.0.1", srv.port(), backoff);
      log.sheds += admitted.sheds;
      if (!admitted.connected) {  // never got past admission control
        log.errors += requests;
        return;
      }
      if (recv_timeout_ms >= 0) client.set_recv_timeout_ms(recv_timeout_ms);
      // Stagger sessions across one period so arrivals interleave instead of
      // stampeding on the same instant.
      const Clock::time_point start =
          t0 + period * static_cast<std::int64_t>(s) / static_cast<std::int64_t>(sessions);
      std::size_t next_batch = 0;
      for (std::size_t i = 0; i < requests; ++i) {
        const Clock::time_point scheduled = start + period * static_cast<std::int64_t>(i);
        std::this_thread::sleep_until(scheduled);  // no-op when behind schedule
        const bool do_insert = s < writers && (i + 1) % insert_every == 0 &&
                               next_batch < writer_batches[s].size();
        std::size_t kind = 0;
        std::string line;
        if (do_insert) {
          line = json_insert_line(writer_batches[s][next_batch]);
        } else {
          kind = i % kinds.size();
          line = kinds[kind].line;
          if (deadline_ms >= 0) line += " deadline=" + std::to_string(deadline_ms);
        }
        std::optional<std::string> response;
        if (slow) {
          // Slow client: the request line lands in two writes with a pause
          // between — the server's per-line read path sees a dribble, not a
          // single recv.
          const std::size_t half = line.size() / 2;
          if (client.send_raw(line.substr(0, half))) {
            std::this_thread::sleep_for(std::chrono::milliseconds(slow_delay_ms));
            if (client.send_raw(line.substr(half) + "\n")) response = client.recv_line();
          }
        } else {
          response = client.request(line);
        }
        const double ms = std::chrono::duration<double, std::milli>(Clock::now() - scheduled).count();
        if (!response.has_value()) {
          if (client.timed_out()) {
            // A late response would desync request/response pairing — abort
            // the session and account the remainder as unsent, not failed.
            ++log.timeouts;
            return;
          }
          ++log.errors;
          continue;
        }
        if (response_cancelled(*response)) {
          // Typed deadline abort: the server kept its promise, the budget was
          // just too small. Counted and rated, never an error.
          ++log.deadline_missed;
          continue;
        }
        if (!response_ok(*response)) {
          ++log.errors;
          continue;
        }
        if (do_insert) {
          log.inserts.emplace(parse_version(*response), writer_batches[s][next_batch]);
          ++next_batch;
          log.insert_ms.push_back(ms);
        } else {
          log.queries.push_back({kind, parse_version(*response), strip_metrics(*response)});
          log.query_ms.push_back(ms);
        }
      }
      (void)client.request("quit");
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - bench_start).count();
  srv.stop();

  // Merge the per-session logs.
  std::vector<double> query_ms, insert_ms;
  std::map<std::uint64_t, data::PointSet> inserts_by_version;
  std::vector<QueryRecord> all_queries;
  std::uint64_t errors = 0, deadline_missed = 0, sheds = 0, timeouts = 0;
  for (const auto& log : logs) {
    query_ms.insert(query_ms.end(), log.query_ms.begin(), log.query_ms.end());
    insert_ms.insert(insert_ms.end(), log.insert_ms.begin(), log.insert_ms.end());
    all_queries.insert(all_queries.end(), log.queries.begin(), log.queries.end());
    for (const auto& [version, rows] : log.inserts) inserts_by_version.emplace(version, rows);
    errors += log.errors;
    deadline_missed += log.deadline_missed;
    sheds += log.sheds;
    timeouts += log.timeouts;
  }
  std::sort(query_ms.begin(), query_ms.end());
  std::sort(insert_ms.begin(), insert_ms.end());

  common::Table table({"requests", "count", "p50_ms", "p99_ms", "max_ms"});
  table.add_row({"query", common::Table::fmt(query_ms.size()),
                 common::Table::fmt(percentile(query_ms, 50), 3),
                 common::Table::fmt(percentile(query_ms, 99), 3),
                 common::Table::fmt(query_ms.empty() ? 0.0 : query_ms.back(), 3)});
  table.add_row({"insert", common::Table::fmt(insert_ms.size()),
                 common::Table::fmt(percentile(insert_ms, 50), 3),
                 common::Table::fmt(percentile(insert_ms, 99), 3),
                 common::Table::fmt(insert_ms.empty() ? 0.0 : insert_ms.back(), 3)});
  table.print(std::cout, "open-loop latency (from scheduled arrival)");
  const std::size_t served = query_ms.size() + insert_ms.size();
  const std::uint64_t attempted = served + deadline_missed + errors;
  const double miss_rate =
      attempted == 0 ? 0.0 : 100.0 * static_cast<double>(deadline_missed) / static_cast<double>(attempted);
  const std::uint64_t connect_attempts = sheds + sessions;
  const double shed_rate = 100.0 * static_cast<double>(sheds) / static_cast<double>(connect_attempts);
  std::cout << "served " << served << "/" << sessions * requests << " requests in "
            << common::Table::fmt(wall_s, 2) << "s ("
            << common::Table::fmt(static_cast<double>(served) / wall_s, 1)
            << " req/s aggregate), " << errors << " errors, final version "
            << engine.version() << "\n"
            << "degradation: " << deadline_missed << " deadline-missed ("
            << common::Table::fmt(miss_rate, 1) << "% of attempts), " << sheds
            << " shed connection attempts (" << common::Table::fmt(shed_rate, 1)
            << "% of " << connect_attempts << "), " << timeouts << " client recv timeouts\n";

  if (!json_out.empty()) {
    std::ofstream file(json_out);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + json_out);
    file << "{\"sessions\":" << sessions << ",\"requests\":" << requests
         << ",\"rate_per_session\":" << rate << ",\"served\":" << served
         << ",\"errors\":" << errors << ",\"wall_s\":" << wall_s
         << ",\"deadline_ms\":" << deadline_ms
         << ",\"deadline_missed\":" << deadline_missed
         << ",\"deadline_miss_rate_pct\":" << miss_rate
         << ",\"sheds\":" << sheds << ",\"shed_rate_pct\":" << shed_rate
         << ",\"timeouts\":" << timeouts
         << ",\"slow_sessions\":" << slow_sessions
         << ",\"query\":{\"count\":" << query_ms.size()
         << ",\"p50_ms\":" << percentile(query_ms, 50)
         << ",\"p99_ms\":" << percentile(query_ms, 99) << "}"
         << ",\"insert\":{\"count\":" << insert_ms.size()
         << ",\"p50_ms\":" << percentile(insert_ms, 50)
         << ",\"p99_ms\":" << percentile(insert_ms, 99) << "}}\n";
    std::cout << "results written to " << json_out << "\n";
  }

  if (errors != 0) {
    std::cerr << "FAIL: " << errors << " request errors\n";
    return 1;
  }
  if (!check) return 0;

  // --check: single-threaded replay. Apply the recorded insert batches in
  // version order on a fresh engine; every recorded query re-executes at the
  // version its response reported and must reproduce the served payload
  // byte for byte.
  std::cout << "\nreplay check: " << all_queries.size() << " query responses across "
            << inserts_by_version.size() + 1 << " snapshot versions\n";
  service::QueryEngine replay(dataset, engine_options);
  std::map<std::uint64_t, std::vector<const QueryRecord*>> queries_by_version;
  for (const auto& record : all_queries) queries_by_version[record.version].push_back(&record);

  std::uint64_t verified = 0, mismatches = 0;
  auto verify_at = [&](std::uint64_t version) {
    const auto it = queries_by_version.find(version);
    if (it == queries_by_version.end()) return;
    for (const QueryRecord* record : it->second) {
      const service::QueryResult result = replay.execute(kinds[record->kind].query);
      const std::string expected = strip_metrics(server::result_line(kinds[record->kind].query, result));
      if (expected == record->payload) {
        ++verified;
      } else {
        ++mismatches;
        if (mismatches <= 3) {
          std::cerr << "MISMATCH at version " << version << " kind '" << kinds[record->kind].line
                    << "':\n  served:   " << record->payload.substr(0, 200)
                    << "\n  replayed: " << expected.substr(0, 200) << "\n";
        }
      }
    }
  };
  verify_at(0);
  for (const auto& [version, rows] : inserts_by_version) {
    const std::uint64_t replayed = replay.insert_batch(rows);
    MRSKY_REQUIRE(replayed == version,
                  "replay version drift: expected " + std::to_string(version) + ", got " +
                      std::to_string(replayed));
    verify_at(version);
  }
  std::cout << "replay: " << verified << " bitwise-identical, " << mismatches << " mismatches\n";
  if (mismatches != 0 || verified != all_queries.size()) {
    std::cerr << "FAIL: served responses are not bitwise-reproducible\n";
    return 1;
  }
  std::cout << "PASS: every served response matches its single-threaded replay\n";
  return 0;
}
