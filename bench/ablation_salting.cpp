// Ablation — salting oversized partitions (skew cure, extension).
//
// MR-Angle's equal-width sectors are population-skewed on direction-clumped
// QoS data; the densest sector's local-skyline reduce task caps the phase
// makespan. Salting splits oversized partitions into hash sub-buckets at
// the cost of a larger merge input. This bench reports the trade for all
// three schemes at the paper's headline scale.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — salting oversized partitions\n"
            << "N=" << n << ", d=" << dim << ", cluster=" << servers << " servers\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  common::Table table({"method", "salting", "reduce_tasks", "max_task_records",
                       "merge_input", "reduce_s", "total_s"});
  for (part::Scheme scheme : bench::paper_schemes()) {
    for (bool salted : {false, true}) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      config.salt_oversized_partitions = salted;
      const auto cell = bench::run_cell(ps, config, servers);
      std::uint64_t max_records = 0;
      for (const auto& t : cell.run.partition_job.reduce_tasks) {
        max_records = std::max(max_records, t.records_in);
      }
      table.add_row({bench::display_name(scheme), salted ? "on" : "off",
                     common::Table::fmt(cell.run.partition_job.reduce_tasks.size()),
                     common::Table::fmt(max_records),
                     common::Table::fmt(cell.optimality.local_total),
                     common::Table::fmt(cell.times.reduce_seconds, 2),
                     common::Table::fmt(cell.times.total_seconds(), 2)});
    }
  }
  table.print(std::cout, "Salting ablation");
  std::cout << "\nExpected: salting caps the largest reduce task (biggest win for\n"
               "MR-Angle's dense sector) and slightly inflates the merge input.\n";
  return 0;
}
