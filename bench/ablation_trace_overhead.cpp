// Ablation — cost of span-level tracing on the Fig. 5 workload.
//
// Runs the full two-job pipeline with RunOptions::trace unset (the shipping
// default: every instrumentation site is one null-pointer test) and with a
// live TraceRecorder, and reports best-of-N wall clock for both. This is the
// overhead guard for DESIGN.md decision 10: the enabled path pays one mutex
// round-trip per task/attempt/shuffle-bucket span — not per record — so the
// ratio must stay close to 1 even on small inputs where span count is large
// relative to work.
//
// --check turns the run into a CI gate: it fails if tracing-on exceeds
// --max_ratio (default 2.0, deliberately generous — small smoke workloads on
// noisy shared runners jitter far more than production-sized ones), if the
// recorder captured no spans, or if tracing changed the skyline.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"
#include "src/common/timer.hpp"
#include "src/common/trace.hpp"
#include "src/dataset/point_set.hpp"

using namespace mrsky;

namespace {

double measure(const data::PointSet& ps, const core::MRSkylineConfig& config, int repeats,
               core::MRSkylineResult* out) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    common::Timer timer;
    auto result = core::run_mr_skyline(ps, config);
    const double s = timer.elapsed_seconds();
    if (r == 0 || s < best) best = s;
    if (out != nullptr) *out = std::move(result);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 60000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 8));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const bool threads = args.get_bool("threads", false);
  const bool check = args.get_bool("check", false);
  const double max_ratio = args.get_double("max_ratio", 2.0);

  std::cout << "Tracing overhead ablation — Fig. 5 workload, tracing off vs on\n"
            << "N=" << n << ", d=" << dim << ", cluster=" << servers << " servers, engine="
            << (threads ? "threads" : "sequential") << ", best of " << repeats << "\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = servers;
  config.merge_fan_in = 4;
  if (threads) config.run_options.mode = mr::ExecutionMode::kThreads;

  core::MRSkylineResult off_result;
  const double off_seconds = measure(ps, config, repeats, &off_result);

  common::TraceRecorder recorder;
  core::MRSkylineConfig traced = config;
  traced.run_options.trace = &recorder;
  core::MRSkylineResult on_result;
  const double on_seconds = measure(ps, traced, repeats, &on_result);
  // `repeats` pipeline runs accumulate into one recorder; per-run span count
  // is what a single --trace-out file would hold.
  const std::size_t spans_per_run = recorder.spans().size() / static_cast<std::size_t>(repeats);

  const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
  common::Table table({"tracing", "wall_s", "ratio", "spans", "skyline"});
  table.add_row({"off", common::Table::fmt(off_seconds, 4), "1.00x",
                 "0", common::Table::fmt(off_result.skyline.size())});
  table.add_row({"on", common::Table::fmt(on_seconds, 4),
                 common::Table::fmt(ratio, 2) + "x", common::Table::fmt(spans_per_run),
                 common::Table::fmt(on_result.skyline.size())});

  if (args.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "tracing overhead, N=" + std::to_string(n));
    std::cout << "\nDisabled tracing is the default and is free by construction (null\n"
                 "recorder pointer); this table bounds what switching it on costs.\n";
  }

  if (check) {
    if (sorted_ids(on_result.skyline) != sorted_ids(off_result.skyline)) {
      std::cerr << "ERROR: tracing changed the skyline\n";
      return 1;
    }
    if (spans_per_run == 0) {
      std::cerr << "ERROR: traced run recorded no spans\n";
      return 1;
    }
    if (ratio > max_ratio) {
      std::cerr << "ERROR: tracing-on ratio " << ratio << " exceeds limit " << max_ratio << "\n";
      return 1;
    }
    std::cout << "\ncheck passed: ratio " << common::Table::fmt(ratio, 2) << "x <= "
              << common::Table::fmt(max_ratio, 2) << "x, " << spans_per_run << " spans\n";
  }
  return 0;
}
