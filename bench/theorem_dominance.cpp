// Theorems 1 & 2 (paper §IV) — dominance-ability validation.
//
// Validates the closed-form dominance abilities against Monte-Carlo area
// estimates and sweeps Theorem 2's lower bound ΔD >= x/(2L²)(L − x/2) over
// the region where both formulas apply (x <= L, y <= x/2).
#include <iostream>

#include "src/common/cli.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"
#include "src/core/dominance_analysis.hpp"

using namespace mrsky;
using namespace mrsky::core::analysis;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 400000));
  const double L = args.get_double("L", 1.0);
  common::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  std::cout << "Theorem 1/2 validation — closed forms vs Monte-Carlo (" << samples
            << " samples per point, L=" << L << ")\n\n";

  common::Table table({"x", "y", "D_angle_closed", "D_angle_mc", "D_grid_closed", "D_grid_mc",
                       "delta", "thm2_bound", "bound_holds"});
  bool all_hold = true;
  for (double x = 0.1; x <= L + 1e-9; x += 0.15) {
    for (double frac : {0.25, 0.5, 1.0}) {
      const double y = frac * x / 2.0;
      const double angle_closed = dominance_ability_angle(x, y, L);
      const double angle_mc = monte_carlo_angle(x, y, L, samples, rng);
      const double grid_closed = dominance_ability_grid(x, y, L);
      const double grid_mc = monte_carlo_grid(x, y, L, samples, rng);
      const double delta = angle_closed - grid_closed;
      const double bound = delta_lower_bound(x, L);
      const bool holds = delta + 1e-12 >= bound;
      all_hold = all_hold && holds;
      table.add_row({common::Table::fmt(x, 2), common::Table::fmt(y, 3),
                     common::Table::fmt(angle_closed, 4), common::Table::fmt(angle_mc, 4),
                     common::Table::fmt(grid_closed, 4), common::Table::fmt(grid_mc, 4),
                     common::Table::fmt(delta, 4), common::Table::fmt(bound, 4),
                     holds ? "yes" : "NO"});
    }
  }
  table.print(std::cout, "Theorem 1/2");
  std::cout << "\nTheorem 2 lower bound holds at every sweep point: " << (all_hold ? "yes" : "NO")
            << "\n(The bound is tight at y = x/2 — compare delta vs thm2_bound on those rows.)\n";
  return all_hold ? 0 : 1;
}
