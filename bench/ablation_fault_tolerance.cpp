// Ablation — fault tolerance: task retries, bad-record skipping, node loss.
//
// The paper's Hadoop cluster inherited the framework's fault tolerance for
// free; our engine now reproduces it, so its price can be dosed. Two sweeps
// over the Fig. 5 workload (QWS-like, MR-Angle):
//
//   1. Task-failure probability: every task attempt may crash mid-task at a
//      deterministic record offset; the lost prefix is re-executed. The
//      engine measures the wasted records/work and the simulator charges
//      them, so the overhead column is measured, not imputed.
//   2. Node loss: one server dies at t seconds into each simulated job's map
//      phase (the pipeline runs job 1 + merge rounds; failure times are
//      job-relative). In-flight tasks reschedule and the dead server's
//      completed map output is re-executed (Hadoop semantics), with and
//      without speculative execution of the recovery stragglers.
//
// The skyline itself is identical in every cell — fault tolerance changes
// when work happens, never what is computed.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — fault tolerance\n"
            << "N=" << n << ", d=" << dim << ", MR-Angle, " << servers << " servers\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);

  // --- Sweep 1: injected task failures. --------------------------------
  core::MRSkylineConfig config;
  config.scheme = part::Scheme::kAngular;
  config.servers = servers;
  const auto baseline = core::run_mr_skyline(ps, config);
  mr::ClusterModel healthy;
  healthy.servers = servers;
  const double healthy_total = baseline.simulate(healthy).total_seconds();

  common::Table failures({"failure_p", "retried", "wasted_records", "skyline", "total_s",
                          "vs_healthy"});
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    config.run_options.task_failure_probability = p;
    const auto result = core::run_mr_skyline(ps, config);
    mr::FailureReport report = result.partition_job.failure_report();
    for (const auto& round : result.merge_rounds) report += round.failure_report();
    const double total = result.simulate(healthy).total_seconds();
    failures.add_row({common::Table::fmt(p, 2), common::Table::fmt(report.tasks_retried),
                      common::Table::fmt(report.wasted_records),
                      common::Table::fmt(result.skyline.size()),
                      common::Table::fmt(total, 2),
                      common::Table::fmt(total / healthy_total, 2) + "x"});
  }
  failures.print(std::cout, "Injected task failures (mid-task crash + re-execution)");
  config.run_options.task_failure_probability = 0.0;

  // --- Sweep 2: node loss at t seconds into the map phase. -------------
  const double map_makespan = baseline.simulate(healthy).map_seconds;
  common::Table loss({"lost_at", "speculation", "map_s", "reduce_s", "total_s",
                      "vs_healthy"});
  for (double frac : {0.25, 0.5, 0.75, 1.5}) {
    for (bool speculation : {false, true}) {
      mr::ClusterModel model = healthy;
      model.speculative_execution = speculation;
      model.node_failures.push_back(mr::NodeFailure{0, frac * map_makespan});
      const auto times = baseline.simulate(model);
      loss.add_row({common::Table::fmt(frac, 2) + " x map", speculation ? "on" : "off",
                    common::Table::fmt(times.map_seconds, 2),
                    common::Table::fmt(times.reduce_seconds, 2),
                    common::Table::fmt(times.total_seconds(), 2),
                    common::Table::fmt(times.total_seconds() / healthy_total, 2) + "x"});
    }
  }
  loss.print(std::cout, "Node loss (server 0 dies at t, map output re-executed)");

  std::cout << "\nExpected: retry overhead grows with the failure probability; the\n"
               "earlier a server dies the more of the job runs one server short\n"
               "(plus its lost map output re-executed on the survivors), losses\n"
               "after a job's phases leave that job untouched, and speculation\n"
               "claws back part of the recovery stragglers. The skyline size\n"
               "never changes.\n";
  return 0;
}
