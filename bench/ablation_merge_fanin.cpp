// Ablation — merge topology: the paper's single-reducer merge vs tree merge.
//
// Fig. 6 shows the Reduce phase refusing to scale: Algorithm 1 funnels every
// local-skyline point into one reducer. The tree merge (merge_fan_in >= 2)
// combines `fan_in` partitions per reducer per round, paying one extra job
// startup per round for a parallel merge. This bench sweeps the fan-in and
// prints where the trade pays off.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));

  std::cout << "Ablation — merge topology (0 = paper's single reducer)\n"
            << "N=" << n << ", d=" << dim << ", MR-Angle, cluster=" << servers
            << " servers\n\n";

  const auto ps = bench::qws_workload(n, dim, seed);
  common::Table table({"fan_in", "merge_rounds", "merge_reduce_work_max", "map_s", "reduce_s",
                       "startup_s", "total_s"});
  for (std::size_t fan_in : {0u, 2u, 4u, 8u}) {
    core::MRSkylineConfig config;
    config.scheme = part::Scheme::kAngular;
    config.merge_fan_in = fan_in;
    const auto cell = bench::run_cell(ps, config, servers);
    // Largest single merge-reduce task (the serial bottleneck).
    std::uint64_t max_task_work = 0;
    for (const auto& round : cell.run.merge_rounds) {
      for (const auto& task : round.reduce_tasks) {
        max_task_work = std::max(max_task_work, task.work_units);
      }
    }
    table.add_row({fan_in == 0 ? "single" : common::Table::fmt(fan_in),
                   common::Table::fmt(cell.run.merge_rounds.size()),
                   common::Table::fmt(max_task_work),
                   common::Table::fmt(cell.times.map_seconds, 2),
                   common::Table::fmt(cell.times.reduce_seconds, 2),
                   common::Table::fmt(cell.times.startup_seconds, 1),
                   common::Table::fmt(cell.times.total_seconds(), 2)});
  }
  table.print(std::cout, "Merge-topology ablation");
  std::cout << "\nExpected: tree merge shrinks the largest merge task; it wins on total\n"
               "time once the merge work saved exceeds the extra job startups.\n";
  return 0;
}
