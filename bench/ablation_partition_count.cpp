// Ablation — sensitivity to the partition count Np.
//
// The paper fixes Np = 2 × servers "empirically" (§III-A) without a sweep.
// This bench varies Np at a fixed cluster and shows the design trade-off:
// MR-Dim and MR-Grid accumulate more locally-optimal-but-globally-dominated
// points as Np grows (merge input inflates, total dominance work rises),
// while MR-Angle's cone sectors keep both nearly flat — its advantage over
// the others *widens* with Np.
#include <iostream>

#include "bench/support.hpp"
#include "src/common/cli.hpp"
#include "src/common/table.hpp"

using namespace mrsky;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("cardinality", 100000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 10));
  const auto servers = static_cast<std::size_t>(args.get_int("servers", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", bench::kDefaultSeed));
  const auto counts = args.get_int_list("partitions", {8, 16, 32, 64, 128});

  std::cout << "Ablation — partition count Np (paper default: 2 x servers = "
            << 2 * servers << ")\nN=" << n << ", d=" << dim << ", cluster=" << servers
            << " servers\n\n";

  common::Table table({"Np", "method", "total_s", "dominance_tests", "merge_input",
                       "optimality", "balance_cv"});
  for (std::int64_t np : counts) {
    for (part::Scheme scheme : bench::paper_schemes()) {
      core::MRSkylineConfig config;
      config.scheme = scheme;
      config.num_partitions = static_cast<std::size_t>(np);
      const auto ps = bench::qws_workload(n, dim, seed);
      const auto cell = bench::run_cell(ps, config, servers);
      table.add_row({common::Table::fmt(static_cast<int>(np)), bench::display_name(scheme),
                     common::Table::fmt(cell.times.total_seconds(), 2),
                     common::Table::fmt(cell.run.partition_job.total_work_units() +
                                        cell.run.merge_job().total_work_units()),
                     common::Table::fmt(cell.optimality.local_total),
                     common::Table::fmt(cell.optimality.mean_optimality, 3),
                     common::Table::fmt(cell.run.partition_report.balance_cv, 2)});
    }
  }
  table.print(std::cout, "Partition-count ablation");
  std::cout << "\nExpected: MR-Angle's dominance work and merge input stay nearly flat in\n"
               "Np while MR-Dim/MR-Grid inflate, widening MR-Angle's advantage.\n";
  return 0;
}
