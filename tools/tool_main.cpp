// mrsky — command-line front end for the library.
//
// Subcommands:
//   generate  — write a synthetic dataset to CSV
//   convert   — stage a CSV/.mrsk dataset into an on-disk .mrb block store
//   inspect   — print a .mrb file's block index (corners, checksums)
//   skyline   — compute a skyline from a dataset with the MR pipeline;
//               a .mrb input streams block by block (out-of-core)
//   report    — partition diagnostics for a dataset under a scheme
//   simulate  — simulated cluster times across server counts
//   plan      — recommend a pipeline configuration: static heuristic from
//               (N, d, servers), or the adaptive sample-analyze-optimize
//               planner's full candidate table when --input is given
//   query     — serve a query script against a resident QueryEngine
//   serve     — run the concurrent multi-session skyline server (TCP)
//
// Examples:
//   mrsky generate --output data.csv --n 10000 --dim 6 --qws
//   mrsky convert --input data.csv --output data.mrb --block-rows 4096 --order zorder
//   mrsky inspect --input data.mrb --verify true
//   mrsky skyline --input data.mrb --scheme angular --servers 8 \
//         --output skyline.csv --metrics-json metrics.json
//   mrsky report --input data.csv --scheme grid --partitions 16
//   mrsky simulate --input data.csv --scheme angular --servers-list 4,8,16,32
//   mrsky query --input data.csv --script session.mrq
//         --metrics-json query_metrics.json --trace-out trace.json
//   mrsky serve --input data.csv --port 7878 --max-sessions 8 \
//       --default-deadline-ms 500 --idle-timeout-ms 30000 --metrics-json serve.json
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <variant>

#include "src/common/cli.hpp"
#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/table.hpp"
#include "src/core/adaptive_planner.hpp"
#include "src/core/mr_skyline.hpp"
#include "src/core/optimality.hpp"
#include "src/core/planner.hpp"
#include "src/dataset/block_store.hpp"
#include "src/dataset/generators.hpp"
#include "src/dataset/io.hpp"
#include "src/dataset/record_file.hpp"
#include "src/dataset/normalize.hpp"
#include "src/dataset/qws.hpp"
#include "src/dataset/source.hpp"
#include "src/common/trace.hpp"
#include "src/mapreduce/metrics_json.hpp"
#include "src/mapreduce/trace_export.hpp"
#include "src/partition/factory.hpp"
#include "src/partition/stats.hpp"
#include "src/server/server.hpp"
#include "src/service/query_engine.hpp"
#include "src/service/script.hpp"

namespace {

using namespace mrsky;

int usage() {
  std::cerr << "usage: mrsky "
               "<generate|convert|inspect|skyline|report|simulate|plan|query|serve> [--flags]\n"
               "run `mrsky <subcommand>` with no flags to see its defaults in action;\n"
               "see tools/tool_main.cpp header for examples.\n";
  return 2;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(),
                                                suffix) == 0;
}

data::PointSet load_input(const common::CliArgs& args) {
  const std::string path = args.get_string("input", "");
  MRSKY_REQUIRE(!path.empty(), "--input <file.csv|file.mrsk|file.mrb> is required");
  data::PointSet ps(1);
  if (has_suffix(path, ".mrb")) {
    // Subcommands that reach here genuinely need residency (serving,
    // diagnostics), so a .mrb is materialised whole. Attribute values pass
    // through untouched: the file was prepared by `mrsky convert`, and
    // rescaling it here would silently disagree with what `mrsky skyline`
    // streams. Use `mrsky skyline` for out-of-core execution.
    const data::BlockStore store(path);
    if (args.get_bool("lenient", false)) {
      data::ParseReport report;
      ps = store.materialize(&report);
      if (!report.clean()) std::cerr << path << ": " << report.summary();
    } else {
      ps = store.materialize();
    }
    return ps;
  }
  if (args.get_bool("lenient", false)) {
    // Tolerant ingest for hand-curated files (the real QWS dataset is a web
    // crawl): malformed rows and corrupted blocks are dropped, not fatal.
    data::ParseReport report;
    if (has_suffix(path, ".mrsk")) {
      ps = data::read_record_file(path, &report);
    } else {
      data::CsvReadOptions options;
      options.lenient = true;
      ps = data::read_csv_file(path, options, &report);
    }
    if (!report.clean()) std::cerr << path << ": " << report.summary();
  } else {
    ps = has_suffix(path, ".mrsk") ? data::read_record_file(path) : data::read_csv_file(path);
  }
  if (args.get_bool("normalize", true)) ps = data::normalize_min_max(ps);
  return ps;
}

/// The streaming counterpart of load_input, for subcommands that run the
/// pipeline (`skyline`, `plan`): a .mrb input becomes a BlockStoreSource and
/// is never materialised — map tasks read blocks and block pruning skips
/// dominated ones; anything else is loaded resident (with the usual
/// --lenient / --normalize handling) behind a PointSetSource.
std::unique_ptr<data::DatasetSource> load_source(const common::CliArgs& args) {
  const std::string path = args.get_string("input", "");
  MRSKY_REQUIRE(!path.empty(), "--input <file.csv|file.mrsk|file.mrb> is required");
  if (has_suffix(path, ".mrb")) {
    MRSKY_REQUIRE(!args.get_bool("normalize", false),
                  "--normalize is not supported for .mrb inputs (it would force a full "
                  "materialising pass); normalize before `mrsky convert`");
    return std::make_unique<data::BlockStoreSource>(path);
  }
  return std::make_unique<data::PointSetSource>(load_input(args));
}

void save_points(const std::string& path, const data::PointSet& ps) {
  if (has_suffix(path, ".mrsk")) {
    data::write_record_file(path, ps);
  } else {
    data::write_csv_file(path, ps);
  }
}

core::MRSkylineConfig config_from(const common::CliArgs& args) {
  core::MRSkylineConfig config;
  config.scheme = part::parse_scheme(args.get_string("scheme", "angular"));
  config.servers = static_cast<std::size_t>(args.get_int("servers", 8));
  config.num_partitions = static_cast<std::size_t>(args.get_int("partitions", 0));
  config.merge_fan_in = static_cast<std::size_t>(args.get_int("merge-fan-in", 0));
  config.use_combiner = args.get_bool("combiner", false);
  config.salt_oversized_partitions = args.get_bool("salt", false);
  config.local_algorithm = skyline::parse_algorithm(args.get_string("algorithm", "bnl"));

  // Fault-injection knobs (the engine re-executes failed attempts; the exact
  // skyline comes out regardless — see DESIGN.md's fault model).
  config.run_options.task_failure_probability = args.get_double("failure-probability", 0.0);
  config.run_options.failure_seed =
      static_cast<std::uint64_t>(args.get_int("failure-seed", 0xFA11));
  config.run_options.max_task_attempts =
      static_cast<std::size_t>(args.get_int("max-task-attempts", 4));
  config.run_options.skip_bad_records = args.get_bool("skip-bad-records", false);
  config.run_options.max_skipped_records =
      static_cast<std::size_t>(args.get_int("max-skipped-records", 16));

  // Out-of-core knobs (meaningful for .mrb inputs; validate_for rejects a
  // spill budget when the source is resident anyway).
  config.block_prune = args.get_bool("block-prune", config.block_prune);
  config.run_options.shuffle_spill_bytes =
      static_cast<std::uint64_t>(args.get_int("spill-bytes", 0));
  config.run_options.spill_dir = args.get_string("spill-dir", "");
  // Fail here, before any dataset is loaded, with every flag problem in one
  // message (run_mr_skyline would catch them too, but later and after I/O).
  config.validate_or_throw();
  return config;
}

/// Parses --node-failures "server:time,server:time,..." (times in seconds
/// from the start of a job's map phase) and --speculation into the model.
mr::ClusterModel cluster_model_from(const common::CliArgs& args, std::size_t servers) {
  mr::ClusterModel model;
  model.servers = servers;
  model.speculative_execution = args.get_bool("speculation", false);
  const std::string spec = args.get_string("node-failures", "");
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    const std::size_t colon = item.find(':');
    MRSKY_REQUIRE(colon != std::string::npos,
                  "--node-failures expects server:time pairs, got '" + item + "'");
    mr::NodeFailure failure;
    failure.server = static_cast<std::size_t>(std::stoul(item.substr(0, colon)));
    failure.time_seconds = std::stod(item.substr(colon + 1));
    model.node_failures.push_back(failure);
    pos = end + 1;
  }
  return model;
}

int cmd_generate(const common::CliArgs& args) {
  const std::string output = args.get_string("output", "");
  MRSKY_REQUIRE(!output.empty(), "--output <file.csv> is required");
  const auto n = static_cast<std::size_t>(args.get_int("n", 10000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2012));

  data::PointSet ps(1);
  if (args.get_bool("qws", false)) {
    data::QwsLikeGenerator gen(dim, seed);
    ps = gen.generate_oriented(n);
  } else {
    ps = data::generate(data::parse_distribution(args.get_string("distribution", "independent")),
                        n, dim, seed);
  }
  save_points(output, ps);
  std::cout << "wrote " << ps.size() << " points x " << ps.dim() << " attributes to " << output
            << "\n";
  return 0;
}

int cmd_convert(const common::CliArgs& args) {
  const std::string input = args.get_string("input", "");
  const std::string output = args.get_string("output", "");
  MRSKY_REQUIRE(!input.empty(), "--input <file.csv|file.mrsk> is required");
  MRSKY_REQUIRE(!output.empty(), "--output <file.mrb> is required");
  MRSKY_REQUIRE(has_suffix(output, ".mrb"), "--output must end in .mrb");
  MRSKY_REQUIRE(!has_suffix(input, ".mrb"), "--input is already a .mrb block store");
  const auto block_rows = static_cast<std::size_t>(args.get_int(
      "block-rows", static_cast<std::int64_t>(data::blockfmt::kDefaultBlockRows)));
  MRSKY_REQUIRE(block_rows > 0, "--block-rows must be positive");

  // Conversion is a container change, so rows pass through verbatim unless
  // --normalize true is given explicitly (note: opposite default from the
  // query subcommands — the .mrb should hold exactly what later runs read).
  data::PointSet ps(1);
  if (args.get_bool("lenient", false)) {
    data::ParseReport report;
    if (has_suffix(input, ".mrsk")) {
      ps = data::read_record_file(input, &report);
    } else {
      data::CsvReadOptions options;
      options.lenient = true;
      ps = data::read_csv_file(input, options, &report);
    }
    if (!report.clean()) std::cerr << input << ": " << report.summary();
  } else {
    ps = has_suffix(input, ".mrsk") ? data::read_record_file(input) : data::read_csv_file(input);
  }
  if (args.get_bool("normalize", false)) ps = data::normalize_min_max(ps);

  const std::string order = args.get_string("order", "input");
  if (order == "zorder") {
    ps = ps.select(data::zorder_permutation(ps));
  } else {
    MRSKY_REQUIRE(order == "input", "--order must be 'input' or 'zorder', got '" + order + "'");
  }

  data::write_block_store(output, ps, block_rows);
  const data::BlockStore store(output);
  std::cout << "wrote " << store.rows() << " points x " << store.dim() << " attributes to "
            << output << ": " << store.block_count() << " blocks of <= " << store.block_rows()
            << " rows, " << store.file_bytes() << " bytes"
            << (order == "zorder" ? ", z-ordered" : "") << "\n";
  return 0;
}

std::string format_corner(std::span<const double> corner) {
  std::ostringstream os;
  os << std::setprecision(3) << "(";
  const std::size_t shown = corner.size() < 4 ? corner.size() : 4;
  for (std::size_t a = 0; a < shown; ++a) {
    if (a > 0) os << ",";
    os << corner[a];
  }
  if (corner.size() > shown) os << ",..";
  os << ")";
  return os.str();
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

int cmd_inspect(const common::CliArgs& args) {
  const std::string input = args.get_string("input", "");
  MRSKY_REQUIRE(!input.empty(), "--input <file.mrb> is required");
  MRSKY_REQUIRE(has_suffix(input, ".mrb"),
                "inspect reads .mrb block stores (see `mrsky convert`)");
  const data::BlockStore store(input);

  std::cout << input << ": " << store.rows() << " points x " << store.dim() << " attributes, "
            << store.block_count() << " blocks of <= " << store.block_rows() << " rows, "
            << store.file_bytes() << " bytes\n";

  // --block-skylines additionally runs the dominance kernel straight off each
  // mapped block (the layout-is-the-compute-layout demonstration); it reads
  // every payload, where the plain index table touches only the footer.
  const bool block_skylines = args.get_bool("block-skylines", false);
  std::vector<std::string> header = {"block", "rows", "bytes", "checksum", "min_corner",
                                     "max_corner"};
  if (block_skylines) header.push_back("local_sky");
  common::Table table(header);
  for (std::size_t b = 0; b < store.block_count(); ++b) {
    std::vector<std::string> row = {
        common::Table::fmt(b), common::Table::fmt(store.rows_in_block(b)),
        common::Table::fmt(static_cast<std::size_t>(store.block_payload_bytes(b))),
        hex64(store.block_checksum(b)), format_corner(store.block_min(b)),
        format_corner(store.block_max(b))};
    if (block_skylines) {
      row.push_back(common::Table::fmt(store.block_skyline_rows(b).size()));
      store.release(b);
    }
    table.add_row(row);
  }
  table.print(std::cout, "block index");

  if (args.get_bool("verify", false)) {
    for (std::size_t b = 0; b < store.block_count(); ++b) {
      store.verify_block(b);
      store.release(b);
    }
    std::cout << "verified: all " << store.block_count()
              << " payload checksums match the footer\n";
  }
  return 0;
}

int cmd_skyline(const common::CliArgs& args) {
  const auto source = load_source(args);
  auto config = config_from(args);

  // Span tracing: record the real pipeline execution (tasks, attempts,
  // shuffle, merge rounds) and append the simulated cluster schedule, then
  // export Chrome trace-event JSON for Perfetto / chrome://tracing.
  common::TraceRecorder recorder;
  const std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) config.run_options.trace = &recorder;

  const auto result = core::run_mr_skyline(*source, config);

  std::cout << "input:   " << source->describe() << "\n"
            << "scheme:  " << part::to_string(config.scheme) << " ("
            << result.local_skylines.size() << " partitions)\n"
            << "skyline: " << result.skyline.size() << " points\n";
  if (result.partition_job.bytes_read > 0 || result.partition_job.blocks_pruned > 0) {
    std::cout << "blocks:  " << result.partition_job.bytes_read << " bytes read, "
              << result.partition_job.blocks_pruned << " blocks ("
              << result.partition_job.bytes_pruned << " bytes) pruned before read\n";
  }
  if (result.plan.engaged) {
    std::cout << "planner: resolved auto -> " << part::to_string(result.plan.scheme) << " Np="
              << result.plan.partitions << " fan=" << result.plan.merge_fan_in << " salt="
              << (result.plan.salted ? "on" : "off") << (result.plan.fallback ? " (fallback)" : "")
              << ", " << result.plan.candidates << " candidates over " << result.plan.sample_points
              << " sample points in " << result.plan.planning_seconds * 1e3 << " ms\n";
    if (args.get_bool("verbose", false)) std::cout << result.plan.rationale << "\n";
  }
  const auto opt = core::local_skyline_optimality(result.local_skylines, result.skyline);
  std::cout << "local skyline optimality (Eq.5): " << opt.mean_optimality << "\n";
  if (args.get_bool("verbose", false)) std::cout << result.summary();

  if (const std::string out = args.get_string("output", ""); !out.empty()) {
    save_points(out, result.skyline);
    std::cout << "skyline written to " << out << "\n";
  }
  if (const std::string json = args.get_string("metrics-json", ""); !json.empty()) {
    std::ofstream file(json);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + json);
    file << "{";
    if (result.plan.engaged) {
      file << "\"plan\":{\"scheme\":\"" << part::to_string(result.plan.scheme)
           << "\",\"partitions\":" << result.plan.partitions
           << ",\"merge_fan_in\":" << result.plan.merge_fan_in
           << ",\"salted\":" << (result.plan.salted ? "true" : "false")
           << ",\"fallback\":" << (result.plan.fallback ? "true" : "false")
           << ",\"candidates\":" << result.plan.candidates
           << ",\"sample_points\":" << result.plan.sample_points
           << ",\"predicted_seconds\":" << result.plan.predicted_seconds
           << ",\"planning_seconds\":" << result.plan.planning_seconds << "},";
    }
    file << "\"partition_job\":" << mr::to_json(result.partition_job) << ",\"merge_rounds\":[";
    for (std::size_t i = 0; i < result.merge_rounds.size(); ++i) {
      if (i > 0) file << ",";
      file << mr::to_json(result.merge_rounds[i]);
    }
    const mr::ClusterModel model = cluster_model_from(args, config.servers);
    file << "],\"simulated\":" << mr::to_json(result.simulate(model)) << "}\n";
    std::cout << "metrics written to " << json << "\n";
  }
  if (!trace_out.empty()) {
    std::vector<mr::JobMetrics> jobs;
    jobs.reserve(1 + result.merge_rounds.size());
    jobs.push_back(result.partition_job);
    jobs.insert(jobs.end(), result.merge_rounds.begin(), result.merge_rounds.end());
    mr::append_pipeline_trace(recorder, jobs, cluster_model_from(args, config.servers));
    recorder.write_chrome_json(trace_out);
    std::cout << "trace written to " << trace_out << " (" << recorder.spans().size()
              << " spans; load in Perfetto or chrome://tracing)\n";
  }
  return 0;
}

int cmd_report(const common::CliArgs& args) {
  const data::PointSet ps = load_input(args);
  part::PartitionerOptions options;
  options.num_partitions = static_cast<std::size_t>(args.get_int("partitions", 16));
  const auto scheme = part::parse_scheme(args.get_string("scheme", "angular"));
  auto partitioner = part::make_partitioner(scheme, options);
  partitioner->fit(ps);
  const auto report = part::analyze_partitioning(*partitioner, ps);

  common::Table table({"partition", "points", "prunable"});
  for (std::size_t p = 0; p < report.sizes.size(); ++p) {
    const bool prunable =
        std::find(report.prunable.begin(), report.prunable.end(), p) != report.prunable.end();
    table.add_row({common::Table::fmt(p), common::Table::fmt(report.sizes[p]),
                   prunable ? "yes" : ""});
  }
  table.print(std::cout, part::to_string(scheme) + " partition report");
  std::cout << "non-empty: " << report.non_empty << "/" << report.sizes.size()
            << "  balance CV: " << report.balance_cv
            << "  pruned points: " << report.pruned_points << "\n";
  return 0;
}

int cmd_plan(const common::CliArgs& args) {
  // Two modes. With --input: the adaptive planner samples the actual data
  // and prints the full candidate table — planning only, no pipeline run.
  // Without: the static (N, d, servers) heuristic, as before.
  if (!args.get_string("input", "").empty()) {
    const auto source = load_source(args);
    core::MRSkylineConfig base;
    base.servers = static_cast<std::size_t>(args.get_int("servers", 8));
    base.salt_target_factor = args.get_double("salt-target-factor", base.salt_target_factor);
    core::AdaptivePlannerOptions popts;
    popts.sample_size = static_cast<std::size_t>(args.get_int("sample-size", 2048));
    popts.sample_seed = static_cast<std::uint64_t>(args.get_int("sample-seed", 0x5a3e));
    const core::AdaptivePlan plan = core::AdaptivePlanner(popts).plan(*source, base);

    common::Table table({"scheme", "Np", "fan", "salt", "pred_ms", "balance_cv", "prunable_%",
                         "merge_in"});
    for (const auto& c : plan.candidates) {
      table.add_row({part::to_string(c.scheme), common::Table::fmt(c.partitions),
                     common::Table::fmt(c.merge_fan_in), c.salted ? "on" : "",
                     common::Table::fmt(c.total_seconds() * 1e3, 3),
                     common::Table::fmt(c.balance_cv, 3),
                     common::Table::fmt(c.prunable_fraction * 100.0, 1),
                     common::Table::fmt(c.predicted_merge_input, 0)});
    }
    table.print(std::cout, "adaptive plan candidates (" + std::to_string(source->size()) +
                               " points, " + std::to_string(plan.sample_points) + " sampled)");
    std::cout << "\nchosen: --scheme " << part::to_string(plan.config.scheme) << " --partitions "
              << plan.config.effective_partitions() << " --servers " << plan.config.servers;
    if (plan.config.merge_fan_in > 0) std::cout << " --merge-fan-in " << plan.config.merge_fan_in;
    if (plan.config.salt_oversized_partitions) std::cout << " --salt true";
    std::cout << "\nplanning took " << plan.planning_seconds * 1e3 << " ms\n\nrationale:\n"
              << plan.rationale << "\n";
    return 0;
  }

  core::PlannerInputs in;
  in.cardinality = static_cast<std::size_t>(args.get_int("n", 100000));
  in.dim = static_cast<std::size_t>(args.get_int("dim", 10));
  in.servers = static_cast<std::size_t>(args.get_int("servers", 8));
  in.clustered = args.get_bool("clustered", false);
  const auto planned = core::plan_config(in);
  std::cout << "recommended configuration for N=" << in.cardinality << " d=" << in.dim
            << " servers=" << in.servers << ":\n"
            << "  --scheme " << part::to_string(planned.config.scheme)
            << " --servers " << planned.config.servers;
  if (planned.config.merge_fan_in > 0) {
    std::cout << " --merge-fan-in " << planned.config.merge_fan_in;
  }
  std::cout << "\n\nrationale:\n" << planned.rationale;
  return 0;
}

int cmd_simulate(const common::CliArgs& args) {
  const data::PointSet ps = load_input(args);
  auto config = config_from(args);
  const auto servers_list = args.get_int_list("servers-list", {4, 8, 16, 32});

  common::Table table({"servers", "map_s", "reduce_s", "total_s"});
  for (std::int64_t servers : servers_list) {
    config.servers = static_cast<std::size_t>(servers);
    const auto result = core::run_mr_skyline(ps, config);
    const mr::ClusterModel model = cluster_model_from(args, config.servers);
    const auto times = result.simulate(model);
    table.add_row({common::Table::fmt(static_cast<int>(servers)),
                   common::Table::fmt(times.map_seconds, 2),
                   common::Table::fmt(times.reduce_seconds, 2),
                   common::Table::fmt(times.total_seconds(), 2)});
  }
  table.print(std::cout, part::to_string(config.scheme) + " simulated scaling");
  return 0;
}

/// Builds the resident engine for `query`/`serve`. Serving is resident by
/// design (DESIGN.md decision 16): a .mrb input goes through the QueryEngine
/// DatasetSource constructor, which materialises it once at startup; other
/// inputs load through load_input as before.
std::unique_ptr<service::QueryEngine> make_engine(const common::CliArgs& args,
                                                  service::QueryEngineOptions options) {
  const std::string path = args.get_string("input", "");
  if (has_suffix(path, ".mrb")) {
    return std::make_unique<service::QueryEngine>(data::BlockStoreSource(path),
                                                  std::move(options));
  }
  return std::make_unique<service::QueryEngine>(load_input(args), std::move(options));
}

/// Loads an insert-command file verbatim (no normalisation — insert batches
/// must already be in the resident dataset's attribute space; re-normalising
/// per file would shift every batch onto a different scale).
data::PointSet load_insert_file(const std::string& path) {
  return has_suffix(path, ".mrsk") ? data::read_record_file(path) : data::read_csv_file(path);
}

int cmd_query(const common::CliArgs& args) {
  const std::string script_path = args.get_string("script", "");
  MRSKY_REQUIRE(!script_path.empty(), "--script <file> is required");
  const auto commands = service::parse_query_script_file(script_path);

  common::TraceRecorder recorder;
  const std::string trace_out = args.get_string("trace-out", "");

  service::QueryEngineOptions options;
  options.config = config_from(args);
  options.cache_capacity = static_cast<std::size_t>(args.get_int("cache-capacity", 64));
  if (!trace_out.empty()) options.trace = &recorder;

  const auto engine_ptr = make_engine(args, options);
  service::QueryEngine& engine = *engine_ptr;
  std::cout << "dataset: " << engine.dataset().size() << " points x " << engine.dataset().dim()
            << " attributes\n";

  common::Table table({"#", "command", "points", "cache", "fit", "dom_tests", "ms"});
  std::string queries_json;  // JSON array items, one per script command
  std::size_t index = 0;
  for (const auto& command : commands) {
    ++index;
    if (!queries_json.empty()) queries_json += ",";
    if (const auto* insert = std::get_if<service::InsertCommand>(&command)) {
      const data::PointSet extra = load_insert_file(insert->path);
      engine.insert_batch(extra);
      table.add_row({common::Table::fmt(index), "insert " + insert->path,
                     common::Table::fmt(extra.size()), "", "", "", ""});
      queries_json += "{\"command\":\"insert\",\"path\":\"" + common::json_escape(insert->path) +
                      "\",\"points\":" + std::to_string(extra.size()) +
                      ",\"version\":" + std::to_string(engine.version()) + "}";
      continue;
    }
    if (const auto* del = std::get_if<service::DeleteCommand>(&command)) {
      service::MutationBatch batch;
      batch.deletes = del->ids;
      const service::ApplyResult r = engine.apply_batch(batch);
      table.add_row({common::Table::fmt(index),
                     "delete (" + std::to_string(del->ids.size()) + " ids)",
                     common::Table::fmt(r.delta.deleted), "", "", "", ""});
      queries_json += "{\"command\":\"delete\",\"deleted\":" + std::to_string(r.delta.deleted) +
                      ",\"missing\":" + std::to_string(r.delta.missing_deletes) +
                      ",\"expired\":" + std::to_string(r.delta.expired) +
                      ",\"version\":" + std::to_string(r.delta.version) + "}";
      continue;
    }
    const auto& query = std::get<service::Query>(command);
    const auto result = engine.execute(query);
    const auto& m = result.metrics;
    table.add_row({common::Table::fmt(index), service::query_signature(query),
                   common::Table::fmt(m.result_points), m.cache_hit ? "hit" : "miss",
                   m.fit_reused ? "reused" : "", common::Table::fmt(m.dominance_tests),
                   common::Table::fmt(static_cast<double>(m.wall_ns) / 1e6, 3)});
    queries_json += "{\"command\":\"" + common::json_escape(service::query_signature(query)) +
                    "\",\"kind\":\"" + service::query_kind(query) +
                    "\",\"points\":" + std::to_string(m.result_points) +
                    ",\"cache_hit\":" + (m.cache_hit ? "true" : "false") +
                    ",\"fit_reused\":" + (m.fit_reused ? "true" : "false") +
                    ",\"dominance_tests\":" + std::to_string(m.dominance_tests) +
                    ",\"wall_ns\":" + std::to_string(m.wall_ns) +
                    ",\"version\":" + std::to_string(m.dataset_version);
    if (m.planned) {
      queries_json += ",\"plan\":{\"scheme\":\"" + m.plan_scheme +
                      "\",\"partitions\":" + std::to_string(m.plan_partitions) +
                      ",\"reused\":" + (m.plan_reused ? "true" : "false") +
                      ",\"predicted_ns\":" + std::to_string(m.plan_predicted_ns) +
                      ",\"planning_ns\":" + std::to_string(m.plan_planning_ns) + "}";
    }
    queries_json += "}";
  }
  table.print(std::cout, "query session: " + script_path);

  const auto& stats = engine.stats();
  std::cout << "queries: " << stats.queries << "  cache hits: " << stats.cache_hits
            << "  pipeline runs: " << stats.pipeline_runs
            << "  fits computed/reused: " << stats.fits_computed << "/" << stats.fit_reuses
            << "  inserts: " << stats.inserts << "\n";
  if (stats.plans_computed > 0 || stats.plan_reuses > 0) {
    std::cout << "planner: " << stats.plans_computed << " plans computed, "
              << stats.plan_reuses << " reused, predicted "
              << static_cast<double>(stats.plan_predicted_ns) / 1e6 << " ms vs actual "
              << static_cast<double>(stats.plan_actual_ns) / 1e6 << " ms pipeline wall\n";
  }

  if (const std::string json = args.get_string("metrics-json", ""); !json.empty()) {
    std::ofstream file(json);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + json);
    file << "{\"queries\":[" << queries_json << "],\"stats\":{\"queries\":" << stats.queries
         << ",\"cache_hits\":" << stats.cache_hits << ",\"fits_computed\":" << stats.fits_computed
         << ",\"fit_reuses\":" << stats.fit_reuses << ",\"pipeline_runs\":" << stats.pipeline_runs
         << ",\"incremental_serves\":" << stats.incremental_serves
         << ",\"inserts\":" << stats.inserts << ",\"points_inserted\":" << stats.points_inserted
         << ",\"cache_evictions\":" << stats.cache_evictions
         << ",\"plans_computed\":" << stats.plans_computed
         << ",\"plan_reuses\":" << stats.plan_reuses
         << ",\"plan_predicted_ns\":" << stats.plan_predicted_ns
         << ",\"plan_actual_ns\":" << stats.plan_actual_ns
         << ",\"dataset_version\":" << engine.version() << "}}\n";
    std::cout << "metrics written to " << json << "\n";
  }
  if (!trace_out.empty()) {
    recorder.write_chrome_json(trace_out);
    std::cout << "trace written to " << trace_out << " (" << recorder.spans().size()
              << " spans; load in Perfetto or chrome://tracing)\n";
  }
  return 0;
}

int cmd_serve(const common::CliArgs& args) {
  service::QueryEngineOptions options;
  options.config = config_from(args);
  options.cache_capacity = static_cast<std::size_t>(args.get_int("cache-capacity", 64));
  const auto engine_ptr = make_engine(args, options);
  service::QueryEngine& engine = *engine_ptr;

  server::ServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  server_options.max_sessions = static_cast<std::size_t>(args.get_int("max-sessions", 8));
  // Relative `insert <path>` requests resolve against the input file's
  // directory by default — the same base a .mrq script next to the data
  // would use — so a server started from anywhere serves the same files.
  server_options.insert_dir = args.get_string(
      "insert-dir",
      std::filesystem::path(args.get_string("input", "")).parent_path().string());
  // Robustness knobs (ISSUE 7).
  server_options.default_deadline_ms = args.get_int("default-deadline-ms", -1);
  server_options.idle_timeout_ms = args.get_int("idle-timeout-ms", -1);
  server_options.max_line_bytes = static_cast<std::size_t>(
      args.get_int("max-line-bytes", static_cast<std::int64_t>(server_options.max_line_bytes)));
  server_options.drain_grace_ms = args.get_int("drain-grace-ms", server_options.drain_grace_ms);
  server_options.retry_after_ms = args.get_int("retry-after-ms", server_options.retry_after_ms);

  server::SkylineServer srv(engine, server_options);
  srv.start();
  std::cout << "mrsky serve: " << engine.dataset().size() << " points x "
            << engine.dataset().dim() << " attributes resident\n"
            << "listening on 127.0.0.1:" << srv.port() << " (max "
            << server_options.max_sessions << " sessions";
  if (server_options.default_deadline_ms >= 0) {
    std::cout << ", default deadline " << server_options.default_deadline_ms << " ms";
  }
  if (server_options.idle_timeout_ms >= 0) {
    std::cout << ", idle timeout " << server_options.idle_timeout_ms << " ms";
  }
  std::cout << ")\ntype 'quit' (or EOF) to stop\n" << std::flush;

  for (std::string line; std::getline(std::cin, line);) {
    if (line == "quit" || line == "exit") break;
  }
  srv.stop();

  const auto server_stats = srv.stats();
  const auto sessions = srv.completed_sessions();
  common::Table table({"session", "requests", "queries", "hits", "inserts", "errors",
                       "cancelled", "deadline_missed", "ms"});
  for (const auto& s : sessions) {
    table.add_row({common::Table::fmt(s.id), common::Table::fmt(s.requests),
                   common::Table::fmt(s.queries), common::Table::fmt(s.cache_hits),
                   common::Table::fmt(s.inserts), common::Table::fmt(s.errors),
                   common::Table::fmt(s.cancelled), common::Table::fmt(s.deadline_missed),
                   common::Table::fmt(static_cast<double>(s.wall_ns_total) / 1e6, 3)});
  }
  table.print(std::cout, "per-session metrics");

  const auto& stats = engine.stats();
  std::cout << "connections: " << server_stats.accepted << " served, " << server_stats.shed
            << " shed at capacity, " << server_stats.idle_reaped << " idle-reaped, "
            << server_stats.oversized_lines << " oversized, "
            << server_stats.drain_cancelled << " cancelled in drain\n"
            << "engine: " << stats.queries << " queries, " << stats.cache_hits
            << " cache hits, " << stats.queries_cancelled << " cancelled, "
            << stats.inserts << " inserts (" << stats.points_inserted
            << " points), final version " << engine.version() << "\n";
  if (stats.plans_computed > 0 || stats.plan_reuses > 0) {
    std::cout << "planner: " << stats.plans_computed << " plans computed, "
              << stats.plan_reuses << " reused, predicted "
              << static_cast<double>(stats.plan_predicted_ns) / 1e6 << " ms vs actual "
              << static_cast<double>(stats.plan_actual_ns) / 1e6 << " ms pipeline wall\n";
  }

  if (const std::string json = args.get_string("metrics-json", ""); !json.empty()) {
    std::ofstream file(json);
    MRSKY_REQUIRE(static_cast<bool>(file), "cannot open " + json);
    std::string sessions_json;
    for (const auto& s : sessions) {
      if (!sessions_json.empty()) sessions_json += ',';
      sessions_json += s.to_json();
    }
    file << "{\"server\":{\"accepted\":" << server_stats.accepted
         << ",\"shed\":" << server_stats.shed
         << ",\"idle_reaped\":" << server_stats.idle_reaped
         << ",\"oversized_lines\":" << server_stats.oversized_lines
         << ",\"drain_cancelled\":" << server_stats.drain_cancelled
         << "},\"engine\":{\"queries\":" << stats.queries
         << ",\"cache_hits\":" << stats.cache_hits
         << ",\"queries_cancelled\":" << stats.queries_cancelled
         << ",\"inserts\":" << stats.inserts
         << ",\"points_inserted\":" << stats.points_inserted
         << ",\"plans_computed\":" << stats.plans_computed
         << ",\"plan_reuses\":" << stats.plan_reuses
         << ",\"plan_predicted_ns\":" << stats.plan_predicted_ns
         << ",\"plan_actual_ns\":" << stats.plan_actual_ns
         << ",\"dataset_version\":" << engine.version()
         << "},\"sessions\":[" << sessions_json << "]}\n";
    std::cout << "metrics written to " << json << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string subcommand = argv[1];
  try {
    const common::CliArgs args(argc - 1, argv + 1);
    if (subcommand == "generate") return cmd_generate(args);
    if (subcommand == "convert") return cmd_convert(args);
    if (subcommand == "inspect") return cmd_inspect(args);
    if (subcommand == "skyline") return cmd_skyline(args);
    if (subcommand == "report") return cmd_report(args);
    if (subcommand == "simulate") return cmd_simulate(args);
    if (subcommand == "plan") return cmd_plan(args);
    if (subcommand == "query") return cmd_query(args);
    if (subcommand == "serve") return cmd_serve(args);
    std::cerr << "unknown subcommand: " << subcommand << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "mrsky " << subcommand << ": " << e.what() << "\n";
    return 1;
  }
}
