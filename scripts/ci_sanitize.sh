#!/usr/bin/env bash
# Sanitizer CI gate for the concurrent engine paths.
#
#   ./scripts/ci_sanitize.sh [thread|address] [build-dir]
#
# Configures a dedicated build tree with MRSKY_SANITIZE=<kind>, builds the
# test binary, and runs the mapreduce + core + thread-pool suites — the code
# that exercises the parallel shuffle and the persistent pool. TSan is the
# default: it is the check that keeps the concurrent shuffle honest.
set -euo pipefail

KIND="${1:-thread}"
BUILD_DIR="${2:-build-${KIND}san}"

case "$KIND" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address] [build-dir]" >&2; exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMRSKY_SANITIZE="$KIND" \
  -DMRSKY_BUILD_BENCH=OFF \
  -DMRSKY_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j --target mrsky_tests

# The suites touching the engine's concurrency: the generic job engine, the
# thread pool itself, and the skyline pipeline that drives them end to end.
FILTER='ThreadPool*:Job*:JobEdgeCases*:ParallelShuffle*:Counters*:Fault*:SkipBadRecords*:MapOnly*'
FILTER+=':MRSkyline*:Salting*:TreeMerge*:KernelOverride*:SampleFit*'
# The tiled dominance kernel + window buffers (pointer-striding code under the
# skyline algorithms; ASan/UBSan catch lane/padding mistakes, TSan checks the
# thread_local window reuse under the threaded pipeline).
FILTER+=':DominanceBlock*:DominanceBlockGolden*:TiledWindow*'
# The tracing subsystem (its recorder takes the one lock the parallel shuffle
# contends on) and the suites that hammer it: span invariants under both
# engine modes plus the randomized config sweep with tracing slices.
FILTER+=':Trace*:*TraceInvariants*:SimulatorTrace*:*ConfigSweep*'
# The serving layer: QueryEngine owns a persistent pool shared across queries
# (TSan: pool reuse across pipeline runs) and the validation/script/extension
# sweeps ride along for ASan/UBSan coverage of the new subsystem.
FILTER+=':QueryEngine*:QueryScript*:ConfigValidate*:*ExtensionSweep*'
# The multi-session server (ISSUE 6): MVCC snapshot reads racing insert_batch,
# admission control, session churn over real sockets, and the primitives
# underneath (semaphore, JSON parser). EngineConcurrency is the suite whose
# whole point is running under TSan.
FILTER+=':EngineConcurrency*:SkylineServer*:Session*:Protocol*:Semaphore*:SlotGuard*:JsonValue*'
# Deadlines + cooperative cancellation (ISSUE 7): the token/deadline
# primitives, the protocol fuzz loop, and the engine/server cancellation
# paths. SkylineServerChaos and QueryEngineCancellation already match the
# globs above; the explicit additions are the new primitive suites.
FILTER+=':Cancellation*:Deadline*:ProtocolFuzz*'
# The adaptive planner (ISSUE 8): candidate pricing + the process-wide
# CostModel singleton, which scheme=auto pipeline runs mutate concurrently
# via observe_run (TSan checks the mutex discipline); partition diagnostics
# feed the planner's analyze stage.
FILTER+=':AdaptivePlanner*:CostModel*:GrowthFactor*:SchemeAuto*:PartitionStats*'
# Streaming skylines (ISSUE 9): exact maintenance under deletes/TTL
# (MaintainedSkyline), windowed eviction, the randomized insert/delete/TTL
# sweep, and — the part that exists FOR TSan — standing subscriptions racing
# apply_batch publishers and server drain (Subscription*).
FILTER+=':MaintainedSkyline*:SlidingWindow*:StreamSweep*:Subscription*:NotifyQueue*'
# Out-of-core block storage (ISSUE 10): mmap'd block reads feeding the
# threaded pipeline (map tasks touch disjoint blocks concurrently; the
# verify-once checksum flags are the TSan target), the DatasetSource seam,
# and the resident-vs-streamed differential sweep with spill enabled.
FILTER+=':BlockStore*:DatasetSource*:*OutOfCoreSweep*'

if [[ "$KIND" == "thread" ]]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
else
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}"
fi

"$BUILD_DIR/tests/mrsky_tests" --gtest_filter="$FILTER"
echo "== ${KIND} sanitizer run passed"
