#!/usr/bin/env bash
# Regenerates every table/figure reproduction and the ablations.
#
#   ./scripts/run_experiments.sh [build-dir] [output-dir]
#
# Writes one .txt per experiment into the output directory (default
# ./experiment_results) and a combined all_benches.txt. Runtimes: the full
# set takes a few minutes on one core; the N=100k figures dominate.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment_results}"
BENCH_DIR="$BUILD_DIR/bench"

if [[ ! -d "$BENCH_DIR" ]]; then
  echo "error: $BENCH_DIR not found — build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
run() {
  local name="$1"
  shift
  echo "== running $name: $*"
  "$@" | tee "$OUT_DIR/$name.txt"
  echo
}

run fig5a "$BENCH_DIR/fig5_processing_time" --cardinality 1000
run fig5b "$BENCH_DIR/fig5_processing_time" --cardinality 100000
run fig6 "$BENCH_DIR/fig6_scalability"
run fig7a "$BENCH_DIR/fig7_optimality" --cardinality 1000
run fig7b "$BENCH_DIR/fig7_optimality" --cardinality 100000
run theorem "$BENCH_DIR/theorem_dominance"
run ablation_partition_count "$BENCH_DIR/ablation_partition_count"
run ablation_angular_policy "$BENCH_DIR/ablation_angular_policy"
run ablation_local_algorithm "$BENCH_DIR/ablation_local_algorithm"
run ablation_distribution "$BENCH_DIR/ablation_distribution"
run ablation_combiner "$BENCH_DIR/ablation_combiner"
run ablation_merge_fanin "$BENCH_DIR/ablation_merge_fanin"
run ablation_sequential_baselines "$BENCH_DIR/ablation_sequential_baselines"
run ablation_stragglers "$BENCH_DIR/ablation_stragglers"
run ablation_salting "$BENCH_DIR/ablation_salting"
run ablation_threads "$BENCH_DIR/ablation_threads"
run micro_kernels "$BENCH_DIR/micro_kernels" --benchmark_min_time=0.1

rm -f "$OUT_DIR/all_benches.txt"
cat "$OUT_DIR"/*.txt > "$OUT_DIR/all_benches.tmp"
mv "$OUT_DIR/all_benches.tmp" "$OUT_DIR/all_benches.txt"
echo "results written to $OUT_DIR/"
