#!/usr/bin/env bash
# Line-coverage CI gate for the library core.
#
#   ./scripts/ci_coverage.sh [build-dir]
#   COVERAGE_THRESHOLD=75 ./scripts/ci_coverage.sh
#
# Configures a dedicated build tree with MRSKY_COVERAGE=ON (gcov
# instrumentation at -O0), runs the full unit/integration suite, and writes a
# per-file line-coverage report for src/common + src/core into
# experiment_results/coverage_report.txt. Fails if the combined line coverage
# of those two directories — the tracing subsystem and the skyline pipeline,
# the code this repo's correctness rests on — drops below the threshold
# (percent, default 70).
#
# Uses gcovr when installed; otherwise falls back to raw gcov + awk, which is
# all the summary below needs.
set -euo pipefail

BUILD_DIR="${1:-build-coverage}"
THRESHOLD="${COVERAGE_THRESHOLD:-70}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT_DIR="$ROOT/experiment_results"
REPORT="$OUT_DIR/coverage_report.txt"
mkdir -p "$OUT_DIR"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DMRSKY_COVERAGE=ON \
  -DMRSKY_BUILD_BENCH=OFF \
  -DMRSKY_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j --target mrsky_tests
# The gcov fallback below runs from a scratch directory; the .gcda paths fed
# to it must survive that cd.
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"

# Stale counters from a previous run would dilute the numbers.
find "$BUILD_DIR" -name '*.gcda' -delete

"$BUILD_DIR/tests/mrsky_tests" --gtest_brief=1

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root "$ROOT" --object-directory "$BUILD_DIR" \
        --filter "$ROOT/src/common/" --filter "$ROOT/src/core/" \
        --txt "$REPORT" --fail-under-line "$THRESHOLD"
  cat "$REPORT"
else
  SCRATCH="$(mktemp -d)"
  trap 'rm -rf "$SCRATCH"' EXIT
  # gcov prints a "File '...'" / "Lines executed:P% of N" pair per source a
  # TU touched. Headers appear once per including TU with different counts;
  # keep each file's best-covered instance, then gate on the aggregate.
  find "$BUILD_DIR" -name '*.gcda' -print0 |
    (cd "$SCRATCH" && xargs -0 gcov -r -s "$ROOT" 2>/dev/null) |
    awk -v thresh="$THRESHOLD" '
      /^File / {
        f = $0; sub(/^File ./, "", f); sub(/.$/, "", f)
        keep = (f ~ /^src\/(common|core)\//)
      }
      /^Lines executed:/ && keep {
        s = $0; sub(/^Lines executed:/, "", s); split(s, a, "% of ")
        if (!(f in lines) || a[1] > pct[f]) { pct[f] = a[1]; lines[f] = a[2] }
      }
      END {
        for (f in pct) {
          printf "%7.2f%%  %5d  %s\n", pct[f], lines[f], f
          covered += pct[f] * lines[f] / 100; total += lines[f]
        }
        overall = total > 0 ? 100 * covered / total : 0
        printf "%7.2f%%  %5d  TOTAL (src/common + src/core)\n", overall, total
        if (overall < thresh) {
          printf "FAIL: %.2f%% is below the %s%% threshold\n", overall, thresh
          exit 1
        }
      }' | tee "$REPORT"
fi

echo "== coverage gate passed (report: $REPORT)"
