#!/usr/bin/env bash
# Robustness CI gate: fault tolerance under sanitizers plus an end-to-end
# fault-injection pass.
#
#   ./scripts/ci_robustness.sh [build-dir]
#
# Three stages:
#   1. ci_sanitize.sh thread — the concurrent engine suites (including the
#      fault-injection tests) under TSan; retries + skip mode must be as
#      data-race-free as the happy path.
#   2. A plain build running the fault-focused test suites: engine faults,
#      cluster node-loss recovery, metrics round-trip, lenient dataset reads.
#   3. The CLI driven with aggressive fault injection + node loss: the
#      skyline must come out byte-identical to a fault-free run.
#   4. The server under hostile clients (ISSUE 7): the chaos + fuzz suites
#      under a hard wall-clock cap (a hang is a failure, not a stall), then
#      the load bench in degradation mode — per-query deadlines, slow
#      clients, a client receive timeout — with the bitwise replay gate on.
set -euo pipefail

BUILD_DIR="${1:-build-robustness}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

"$ROOT/scripts/ci_sanitize.sh" thread "${BUILD_DIR}-tsan"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMRSKY_BUILD_BENCH=ON \
  -DMRSKY_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j --target mrsky_tests mrsky ablation_fault_tolerance bench_server_load

FILTER='Fault*:SkipBadRecords*:NodeFailure*:Cluster*:LptSchedule*:TraceJob*:Speculation*'
FILTER+=':MetricsJson*:CsvIo*:RecordFile*:JobEdgeCases*:MRSkyline*'
"$BUILD_DIR/tests/mrsky_tests" --gtest_filter="$FILTER"

# Server robustness: chaos harness (slowloris, oversized lines, mid-query
# disconnects, deadline storms, kill-during-drain, shed/backoff) plus the
# protocol fuzz loop and the cancellation primitives. `timeout` turns any
# hang — the exact failure mode this gate exists for — into a hard failure.
# The drain test inside the chaos suite is the timed stop() check: stop()
# must cancel in-flight queries and return within its two grace periods.
timeout 300 "$BUILD_DIR/tests/mrsky_tests" \
  --gtest_filter='SkylineServerChaos*:QueryEngineCancellation*:ProtocolFuzz*:Cancellation*:Deadline*'

# Graceful degradation end to end: tight per-query deadlines, a quarter of
# the sessions dribbling their requests, client receive timeouts armed, and
# the single-threaded bitwise replay gate on whatever survived.
timeout 300 "$BUILD_DIR/bench/bench_server_load" --cardinality 4000 --dim 4 \
  --sessions 8 --requests 40 --rate 200 --deadline-ms 250 --slow-fraction 0.25 \
  --recv-timeout-ms 5000 --check

# End-to-end: same dataset, with and without heavy fault injection; the
# skyline files must be byte-identical (fault tolerance may never change
# what is computed). The faulty run also exercises node loss + speculation
# in the simulator and the failure ledger in the metrics JSON.
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
MRSKY="$BUILD_DIR/tools/mrsky"

"$MRSKY" generate --output "$WORK/data.csv" --n 5000 --dim 6 --qws
"$MRSKY" skyline --input "$WORK/data.csv" --scheme angular --servers 8 \
  --output "$WORK/clean.csv"
"$MRSKY" skyline --input "$WORK/data.csv" --scheme angular --servers 8 \
  --output "$WORK/faulty.csv" --metrics-json "$WORK/faulty.json" \
  --failure-probability 0.3 --max-task-attempts 6 \
  --node-failures 0:5,2:40 --speculation --verbose
cmp "$WORK/clean.csv" "$WORK/faulty.csv"
grep -q '"failures":{"tasks_retried":' "$WORK/faulty.json"
grep -q '"injected":true' "$WORK/faulty.json"

"$BUILD_DIR/bench/ablation_fault_tolerance" --cardinality 2000 --dim 4

echo "== robustness gate passed"
