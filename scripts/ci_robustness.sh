#!/usr/bin/env bash
# Robustness CI gate: fault tolerance under sanitizers plus an end-to-end
# fault-injection pass.
#
#   ./scripts/ci_robustness.sh [build-dir]
#
# Three stages:
#   1. ci_sanitize.sh thread — the concurrent engine suites (including the
#      fault-injection tests) under TSan; retries + skip mode must be as
#      data-race-free as the happy path.
#   2. A plain build running the fault-focused test suites: engine faults,
#      cluster node-loss recovery, metrics round-trip, lenient dataset reads.
#   3. The CLI driven with aggressive fault injection + node loss: the
#      skyline must come out byte-identical to a fault-free run.
set -euo pipefail

BUILD_DIR="${1:-build-robustness}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

"$ROOT/scripts/ci_sanitize.sh" thread "${BUILD_DIR}-tsan"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMRSKY_BUILD_BENCH=ON \
  -DMRSKY_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j --target mrsky_tests mrsky ablation_fault_tolerance

FILTER='Fault*:SkipBadRecords*:NodeFailure*:Cluster*:LptSchedule*:TraceJob*:Speculation*'
FILTER+=':MetricsJson*:CsvIo*:RecordFile*:JobEdgeCases*:MRSkyline*'
"$BUILD_DIR/tests/mrsky_tests" --gtest_filter="$FILTER"

# End-to-end: same dataset, with and without heavy fault injection; the
# skyline files must be byte-identical (fault tolerance may never change
# what is computed). The faulty run also exercises node loss + speculation
# in the simulator and the failure ledger in the metrics JSON.
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
MRSKY="$BUILD_DIR/tools/mrsky"

"$MRSKY" generate --output "$WORK/data.csv" --n 5000 --dim 6 --qws
"$MRSKY" skyline --input "$WORK/data.csv" --scheme angular --servers 8 \
  --output "$WORK/clean.csv"
"$MRSKY" skyline --input "$WORK/data.csv" --scheme angular --servers 8 \
  --output "$WORK/faulty.csv" --metrics-json "$WORK/faulty.json" \
  --failure-probability 0.3 --max-task-attempts 6 \
  --node-failures 0:5,2:40 --speculation --verbose
cmp "$WORK/clean.csv" "$WORK/faulty.csv"
grep -q '"failures":{"tasks_retried":' "$WORK/faulty.json"
grep -q '"injected":true' "$WORK/faulty.json"

"$BUILD_DIR/bench/ablation_fault_tolerance" --cardinality 2000 --dim 4

echo "== robustness gate passed"
