#!/usr/bin/env bash
# Perf-smoke CI gate for the tiled dominance kernel (DESIGN.md decision 9).
#
#   ./scripts/ci_perf_smoke.sh [results-dir]
#
# Builds two release trees — the portable scalar-tile build and the
# MRSKY_NATIVE (AVX2, runtime-dispatched) build — runs the kernel unit tests
# in the native tree, lands the micro-benchmark timings as machine-readable
# JSON under experiment_results/, and drives the mrsky CLI end to end in both
# trees, failing if their skylines diverge by a single byte. Wall-clock
# numbers are recorded, not asserted: thresholds are meaningless on shared CI
# boxes; byte-identity of the results is the hard gate.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS="${1:-$ROOT/experiment_results}"
mkdir -p "$RESULTS"

build_tree() {
  local dir="$1" native="$2"
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DMRSKY_NATIVE="$native" \
    -DMRSKY_BUILD_TESTS=ON \
    -DMRSKY_BUILD_BENCH=ON \
    -DMRSKY_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j --target micro_kernels mrsky mrsky_tests bench_query_engine ablation_planner bench_stream bench_out_of_core
}

build_tree "$ROOT/build-perf-scalar" OFF
build_tree "$ROOT/build-perf-native" ON

# Kernel correctness in the native tree (the scalar tree runs these in the
# regular ctest gate): SIMD-vs-scalar property tests plus the golden
# dominance-test counters the simulator's time model depends on.
"$ROOT/build-perf-native/tests/mrsky_tests" \
  --gtest_filter='DominanceBlock*:DominanceBlockGolden*:TiledWindow*'

BENCH_FILTER='BM_DominanceWindow|BM_DominatorProbe|BM_PrefilterAblation'
for kind in scalar native; do
  "$ROOT/build-perf-$kind/bench/micro_kernels" \
    --benchmark_filter="$BENCH_FILTER" \
    --benchmark_min_time=0.2 \
    --benchmark_out="$RESULTS/micro_kernels_$kind.json" \
    --benchmark_out_format=json
done

# End-to-end divergence gate: same dataset, same pipeline, both builds must
# emit byte-identical skylines. (Sequential-vs-threaded identity is covered
# by DominanceBlock.PipelineSequentialAndThreadedAreByteIdentical above.)
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$ROOT/build-perf-scalar/tools/mrsky" generate \
  --output "$WORK/data.csv" --n 20000 --dim 6 --qws --seed 2012

for algo in bnl sfs dc; do
  "$ROOT/build-perf-scalar/tools/mrsky" skyline --input "$WORK/data.csv" \
    --scheme angular --servers 8 --algorithm "$algo" \
    --output "$WORK/sky_scalar_$algo.csv"
  "$ROOT/build-perf-native/tools/mrsky" skyline --input "$WORK/data.csv" \
    --scheme angular --servers 8 --algorithm "$algo" \
    --output "$WORK/sky_native_$algo.csv"
  if ! cmp -s "$WORK/sky_scalar_$algo.csv" "$WORK/sky_native_$algo.csv"; then
    echo "FAIL: $algo skyline diverged between scalar and native builds" >&2
    diff "$WORK/sky_scalar_$algo.csv" "$WORK/sky_native_$algo.csv" | head >&2
    exit 1
  fi
  if ! cmp -s "$WORK/sky_scalar_bnl.csv" "$WORK/sky_scalar_$algo.csv"; then
    echo "FAIL: $algo skyline diverged from bnl within the scalar build" >&2
    exit 1
  fi
done

# QueryEngine serving-throughput gate (ISSUE 5 acceptance): on the Fig. 5
# workload a warm repeated query must be at least 5x faster than its cold
# first execution — the result cache is the engine's contract, so unlike the
# wall-clock timings above this *ratio* is asserted, not just recorded.
"$ROOT/build-perf-scalar/bench/bench_query_engine" \
  --cardinality 20000 --dim 6 --seed 2012 --repeats 5 \
  --json "$RESULTS/query_engine.json" \
  --check --min-warm-speedup 5

# Adaptive planner gate (ISSUE 8 acceptance): at perf scale scheme=auto's
# ex-planning pipeline wall must be within 10% (+ noise floor) of the best
# static scheme on every workload family, with bitwise-identical skylines and
# bounded planning overhead. Asserted (--check), and the sweep is landed as
# machine-readable JSON next to the other perf results.
"$ROOT/build-perf-scalar/bench/ablation_planner" \
  --cardinality 60000 --dim 5 --seed 2012 --repeats 3 \
  --json "$RESULTS/planner_sweep.json" \
  --check

# Streaming maintenance gate (ISSUE 9 acceptance): on a resident set large
# enough that a from-scratch recompute per tick hurts, maintained apply_batch
# must process events at >= 5x the recompute baseline's rate, with the final
# skylines bitwise identical (that identity is asserted unconditionally
# inside the bench, before the ratio gate).
"$ROOT/build-perf-scalar/bench/bench_stream" \
  --cardinality 12000 --dim 4 --ticks 200 --seed 2012 \
  --json "$RESULTS/stream_sweep.json" \
  --check --min-speedup 5

# Out-of-core gate (ISSUE 10 acceptance): three separate processes, because
# VmHWM is a per-process high-water mark — generation or the resident
# baseline would pollute the streamed run's reading. The .mrb file is >= 4x
# the RSS cap, the streamed run must stay under the cap (map-task count,
# partition count and thread count bound the per-task footprints; the
# shuffle spills past --spill-bytes), corner pruning must drop >= 20% of the
# payload bytes before they are read, and the skyline must be bitwise
# identical to the resident baseline.
OOC="$WORK/out_of_core"
mkdir -p "$OOC"
"$ROOT/build-perf-scalar/bench/bench_out_of_core" --mode generate \
  --cardinality 4500000 --dim 4 --seed 2012 --block-rows 2048 \
  --file "$OOC/data.mrb"
"$ROOT/build-perf-scalar/bench/bench_out_of_core" --mode memory \
  --file "$OOC/data.mrb" --baseline "$OOC/skyline.mrsk" \
  --partitions 512 --map-tasks 512
"$ROOT/build-perf-scalar/bench/bench_out_of_core" --mode block \
  --file "$OOC/data.mrb" --baseline "$OOC/skyline.mrsk" \
  --partitions 512 --map-tasks 512 --threads 2 \
  --spill-bytes $((8 * 1024 * 1024)) --rss-cap-mb 38 \
  --json "$RESULTS/out_of_core.json" \
  --check

echo "== perf smoke passed: results identical; timings in $RESULTS/micro_kernels_{scalar,native}.json, $RESULTS/query_engine.json, $RESULTS/planner_sweep.json, $RESULTS/stream_sweep.json and $RESULTS/out_of_core.json"
